//! Readiness polling for the multiplexed transport.
//!
//! Two implementations behind one [`Poller`] facade:
//!
//! * **epoll** (Linux) — a minimal wrapper over the kernel's readiness
//!   queue, so one event-loop thread can own tens of thousands of
//!   nonblocking sockets and wake only for the ones with work. This is
//!   the only module in the crate allowed to contain `unsafe` code (the
//!   crate is `deny(unsafe_code)` elsewhere): a handful of raw libc
//!   syscall declarations, each wrapped in a safe, errno-checked method.
//! * **portable** — a dependency-free fallback that reports every
//!   registered session as ready and lets the session state machines
//!   discover actual readiness via `WouldBlock`. Correct anywhere
//!   `std::net` works (tests and non-Linux hosts), at the cost of some
//!   idle polling; selected automatically off Linux, or explicitly with
//!   `GRADSEC_MUX_POLLER=portable`.
//!
//! Both are *level-triggered*: an event means "this session can make
//! progress now", and the mux event loop advances each flagged session
//! until it hits `WouldBlock` — so a spurious event is harmless and a
//! missed edge cannot strand a session.

#![allow(unsafe_code)]

use std::net::TcpStream;
use std::time::Duration;

use crate::{FlError, Result};

/// What a session wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the socket has bytes to read (or hit EOF/error).
    pub readable: bool,
    /// Wake when the socket can accept more written bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle session.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest — a session with queued reply bytes.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event: the registered token plus what it can do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollEvent {
    /// The token the socket was registered under (the mux uses the
    /// session's slot index).
    pub token: usize,
    /// Reading (or observing EOF/error) will make progress.
    pub readable: bool,
    /// Writing will make progress.
    pub writable: bool,
}

/// A readiness poller: epoll on Linux, the portable scan elsewhere.
#[derive(Debug)]
pub enum Poller {
    /// Kernel readiness queue (Linux only).
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    /// Everything-is-ready fallback driven by `WouldBlock`.
    Portable(PortablePoller),
}

impl Poller {
    /// Builds the best poller for this host. `GRADSEC_MUX_POLLER=portable`
    /// forces the fallback (useful for exercising it on Linux); an epoll
    /// setup failure also degrades to the fallback rather than erroring.
    pub fn new() -> Poller {
        let forced = std::env::var("GRADSEC_MUX_POLLER")
            .map(|v| v.eq_ignore_ascii_case("portable"))
            .unwrap_or(false);
        #[cfg(target_os = "linux")]
        if !forced {
            if let Ok(p) = EpollPoller::new() {
                return Poller::Epoll(p);
            }
        }
        let _ = forced;
        Poller::Portable(PortablePoller::default())
    }

    /// Which implementation backs this poller (for logs and benches).
    pub fn kind(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Portable(_) => "portable",
        }
    }

    /// Starts watching `stream` under `token`.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the kernel rejects the watch.
    pub fn register(&mut self, stream: &TcpStream, token: usize, interest: Interest) -> Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(EPOLL_CTL_ADD, stream, token, interest),
            Poller::Portable(p) => {
                p.set(token, Some(interest));
                Ok(())
            }
        }
    }

    /// Changes what `token` is woken for.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the kernel rejects the change.
    pub fn modify(&mut self, stream: &TcpStream, token: usize, interest: Interest) -> Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(EPOLL_CTL_MOD, stream, token, interest),
            Poller::Portable(p) => {
                p.set(token, Some(interest));
                Ok(())
            }
        }
    }

    /// Stops watching `token` (call before closing the socket).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the kernel rejects the removal.
    pub fn deregister(&mut self, stream: &TcpStream, token: usize) -> Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(EPOLL_CTL_DEL, stream, token, Interest::READ),
            Poller::Portable(p) => {
                p.set(token, None);
                Ok(())
            }
        }
    }

    /// Waits up to `timeout` and fills `events` with ready sessions
    /// (cleared first; empty after an idle timeout).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the wait itself fails.
    pub fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Duration) -> Result<()> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(events, timeout),
            Poller::Portable(p) => {
                p.wait(events, timeout);
                Ok(())
            }
        }
    }
}

impl Default for Poller {
    fn default() -> Self {
        Poller::new()
    }
}

/// The portable fallback: keeps the registered token set and reports all
/// of it as ready after a short nap, leaving actual readiness discovery
/// to the sessions' nonblocking reads/writes (`WouldBlock` means "not
/// yet"). The nap is capped well below the caller's idle timeout so
/// fallback latency stays in the single milliseconds.
#[derive(Debug, Default)]
pub struct PortablePoller {
    watched: Vec<(usize, Interest)>,
}

impl PortablePoller {
    fn set(&mut self, token: usize, interest: Option<Interest>) {
        self.watched.retain(|&(t, _)| t != token);
        if let Some(i) = interest {
            self.watched.push((token, i));
        }
    }

    fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Duration) {
        if !timeout.is_zero() {
            std::thread::sleep(timeout.min(Duration::from_millis(1)));
        }
        events.extend(self.watched.iter().map(|&(token, interest)| PollEvent {
            token,
            readable: interest.readable,
            writable: interest.writable,
        }));
    }
}

// ---------------------------------------------------------------------------
// Linux epoll wrapper (the unsafe island).
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
const EPOLL_CTL_ADD: i32 = 1;
#[cfg(target_os = "linux")]
const EPOLL_CTL_DEL: i32 = 2;
#[cfg(target_os = "linux")]
const EPOLL_CTL_MOD: i32 = 3;

#[cfg(target_os = "linux")]
const EPOLLIN: u32 = 0x001;
#[cfg(target_os = "linux")]
const EPOLLOUT: u32 = 0x004;
#[cfg(target_os = "linux")]
const EPOLLERR: u32 = 0x008;
#[cfg(target_os = "linux")]
const EPOLLHUP: u32 = 0x010;
#[cfg(target_os = "linux")]
const EPOLLRDHUP: u32 = 0x2000;
#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `struct epoll_event`. The kernel ABI packs it on x86-64 (12 bytes);
/// every other architecture uses natural alignment — mirroring libc's
/// definition exactly is what keeps the raw syscalls below sound.
#[cfg(target_os = "linux")]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// The Linux readiness queue: one epoll instance per event-loop thread.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct EpollPoller {
    epfd: i32,
    buf: Vec<EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> std::io::Result<EpollPoller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // an errno failure, checked before the fd is used anywhere.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(EpollPoller {
            epfd,
            buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&mut self, op: i32, stream: &TcpStream, token: usize, interest: Interest) -> Result<()> {
        use std::os::fd::AsRawFd;
        let mut flags = EPOLLRDHUP;
        if interest.readable {
            flags |= EPOLLIN;
        }
        if interest.writable {
            flags |= EPOLLOUT;
        }
        let mut ev = EpollEvent {
            events: flags,
            data: token as u64,
        };
        // SAFETY: `ev` is a live, properly-laid-out epoll_event for the
        // duration of the call; the fd is borrowed from an open
        // TcpStream, so it cannot be closed concurrently.
        let rc = unsafe { epoll_ctl(self.epfd, op, stream.as_raw_fd(), &mut ev) };
        if rc < 0 {
            return Err(FlError::transport(
                "updating epoll interest",
                std::io::Error::last_os_error(),
            ));
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Duration) -> Result<()> {
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        let n = loop {
            // SAFETY: the buffer outlives the call and maxevents matches
            // its length, so the kernel never writes out of bounds.
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                continue;
            }
            return Err(FlError::transport("waiting on epoll", err));
        };
        for ev in &self.buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let flags = { ev.events };
            let data = { ev.data };
            events.push(PollEvent {
                token: data as usize,
                readable: flags & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                writable: flags & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
            });
        }
        // A full buffer means more events may be pending: grow so a huge
        // session count cannot starve the tail tokens.
        if n == self.buf.len() {
            self.buf.resize(n * 2, EpollEvent { events: 0, data: 0 });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        // SAFETY: the fd was returned by epoll_create1 and is closed
        // exactly once, here.
        unsafe {
            close(self.epfd);
        }
    }
}

// ---------------------------------------------------------------------------
// File-descriptor budget (rlimit) helpers.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: i32 = 7;

#[cfg(target_os = "linux")]
extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

#[cfg(target_os = "linux")]
extern "C" {
    fn listen(sockfd: i32, backlog: i32) -> i32;
}

/// Deepens a bound listener's accept backlog. `std::net::TcpListener`
/// hardwires `listen(fd, 128)`; a kilo-client fleet connecting all at
/// once overflows that queue, and the dropped SYNs land in multi-second
/// kernel retry backoff — slower than any amount of accepting can fix.
/// Calling `listen` again on the bound socket just resizes the queue
/// (the kernel clamps to `net.core.somaxconn`). Best effort: `false`
/// when the host refuses or exposes no such API.
pub fn deepen_listen_backlog(listener: &std::net::TcpListener, backlog: u32) -> bool {
    #[cfg(target_os = "linux")]
    {
        use std::os::unix::io::AsRawFd;
        let capped = backlog.min(i32::MAX as u32) as i32;
        // SAFETY: the fd is a valid listening socket owned by `listener`
        // for the duration of the call; re-listen only resizes the
        // accept queue.
        let rc = unsafe { listen(listener.as_raw_fd(), capped) };
        rc == 0
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (listener, backlog);
        false
    }
}

/// The process's current open-file soft limit, if the host exposes one.
/// A loopback mux fleet costs **two** descriptors per session (both
/// socket ends live in this process), so size fleets against
/// `(limit - slack) / 2`.
pub fn fd_soft_limit() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let mut lim = RLimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: `lim` is a valid, writable RLimit for the call.
        let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
        if rc == 0 {
            return Some(lim.rlim_cur);
        }
    }
    None
}

/// Raises the open-file soft limit to the hard limit (the unprivileged
/// maximum), returning the resulting soft limit. Best effort: `None`
/// when the host exposes no rlimit API, the prior soft limit when the
/// raise is refused. Call this before building >1k-session socket
/// fleets.
pub fn raise_fd_soft_limit() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let mut lim = RLimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: `lim` is a valid, writable RLimit for the call.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return None;
        }
        if lim.rlim_cur < lim.rlim_max {
            let want = RLimit {
                rlim_cur: lim.rlim_max,
                rlim_max: lim.rlim_max,
            };
            // SAFETY: `want` is a valid RLimit; raising soft to hard
            // needs no privilege, and failure leaves the limit as-is.
            if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
                return Some(want.rlim_cur);
            }
        }
        Some(lim.rlim_cur)
    }
    #[cfg(not(target_os = "linux"))]
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn drives_readiness(mut poller: Poller) {
        let (a, mut b) = socket_pair();
        a.set_nonblocking(true).unwrap();
        poller.register(&a, 7, Interest::READ).unwrap();

        // Nothing to read yet: an epoll wait comes back empty; the
        // portable poller may report the token, but the socket itself
        // must say WouldBlock.
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(5)).unwrap();
        let mut scratch = [0u8; 8];
        if let Some(ev) = events.iter().find(|e| e.token == 7) {
            assert!(ev.readable);
            let err = (&a).read(&mut scratch).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        }

        // After the peer writes, the token must surface as readable and
        // the bytes must be there.
        b.write_all(b"hi").unwrap();
        b.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "readable never fired");
        }
        let n = (&a).read(&mut scratch).unwrap();
        assert_eq!(&scratch[..n], b"hi");

        // Write interest fires on a fresh socket with buffer space.
        poller.modify(&a, 7, Interest::READ_WRITE).unwrap();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        poller.deregister(&a, 7).unwrap();
        poller.wait(&mut events, Duration::from_millis(5)).unwrap();
        assert!(events.iter().all(|e| e.token != 7));
    }

    #[test]
    fn default_poller_drives_readiness() {
        drives_readiness(Poller::new());
    }

    #[test]
    fn portable_poller_drives_readiness() {
        drives_readiness(Poller::Portable(PortablePoller::default()));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_is_the_linux_default() {
        if std::env::var("GRADSEC_MUX_POLLER").is_err() {
            assert_eq!(Poller::new().kind(), "epoll");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn fd_limits_are_readable_and_raisable() {
        let before = fd_soft_limit().expect("linux exposes RLIMIT_NOFILE");
        assert!(before > 0);
        let after = raise_fd_soft_limit().expect("raise reports a limit");
        assert!(after >= before);
    }
}
