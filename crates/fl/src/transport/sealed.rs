//! Trusted I/O over any transport (paper §7.3).
//!
//! Wraps a pair of endpoints in `gradsec-tee::tiop`'s [`SecureChannel`]:
//! every envelope is encoded, sealed into an authenticated, sequenced
//! [`Frame`], and shipped inside a [`MessageKind::Sealed`] carrier
//! envelope. The bytes the normal world (or the network) sees are
//! ciphertext; replay, reorder and tampering are all detected by the
//! channel. Because sealing happens *above* the byte seam, it composes
//! with every backend — in-process channels and TCP alike.

use gradsec_tee::tiop::{Frame, Role, SecureChannel};

use crate::message::{decode, encode, Envelope, MessageKind};
use crate::transport::{ClientEndpoint, ServerEndpoint};
use crate::{FlError, Result};

fn seal_envelope(channel: &mut SecureChannel, envelope: &Envelope) -> Envelope {
    let frame = channel.seal(&encode(envelope));
    Envelope {
        version: envelope.version,
        kind: MessageKind::Sealed,
        payload: encode(&frame),
    }
}

fn open_envelope(channel: &mut SecureChannel, carrier: &Envelope) -> Result<Envelope> {
    if carrier.kind != MessageKind::Sealed {
        return Err(FlError::Protocol {
            reason: format!("expected a sealed frame, got {:?}", carrier.kind),
        });
    }
    let frame: Frame = decode(&carrier.payload)?;
    let plain = channel.open(&frame)?;
    decode(&plain)
}

/// A [`ServerEndpoint`] whose traffic is sealed through the trusted I/O
/// path.
pub struct SealedServerEndpoint<E: ServerEndpoint> {
    inner: E,
    channel: SecureChannel,
}

impl<E: ServerEndpoint> SealedServerEndpoint<E> {
    /// Wraps `inner`, deriving directional keys from the shared secret
    /// established out-of-band through remote attestation.
    pub fn established(inner: E, shared_secret: &[u8]) -> Self {
        SealedServerEndpoint {
            inner,
            channel: SecureChannel::established(shared_secret, Role::Server),
        }
    }
}

impl<E: ServerEndpoint> ServerEndpoint for SealedServerEndpoint<E> {
    fn exchange(&mut self, request: Envelope) -> Result<Envelope> {
        let sealed = seal_envelope(&mut self.channel, &request);
        let reply = self.inner.exchange(sealed)?;
        open_envelope(&mut self.channel, &reply)
    }

    fn notify(&mut self, message: Envelope) -> Result<()> {
        let sealed = seal_envelope(&mut self.channel, &message);
        self.inner.notify(sealed)
    }

    fn descriptor(&self) -> String {
        format!("sealed:{}", self.inner.descriptor())
    }
}

/// A [`ClientEndpoint`] whose traffic is sealed through the trusted I/O
/// path.
pub struct SealedClientEndpoint<E: ClientEndpoint> {
    inner: E,
    channel: SecureChannel,
}

impl<E: ClientEndpoint> SealedClientEndpoint<E> {
    /// Wraps `inner` with the client-role keys of the shared secret.
    pub fn established(inner: E, shared_secret: &[u8]) -> Self {
        SealedClientEndpoint {
            inner,
            channel: SecureChannel::established(shared_secret, Role::Client),
        }
    }
}

impl<E: ClientEndpoint> ClientEndpoint for SealedClientEndpoint<E> {
    fn recv(&mut self) -> Result<Envelope> {
        let carrier = self.inner.recv()?;
        open_envelope(&mut self.channel, &carrier)
    }

    fn send(&mut self, reply: Envelope) -> Result<()> {
        let sealed = seal_envelope(&mut self.channel, &reply);
        self.inner.send(sealed)
    }

    fn descriptor(&self) -> String {
        format!("sealed:{}", self.inner.descriptor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DeviceProfile, FlClient};
    use crate::message::Hello;
    use crate::trainer::PlainSgdTrainer;
    use crate::transport::inprocess::channel_pair;
    use crate::transport::{ClientSession, RemoteClient};
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;
    use std::sync::Arc;

    fn fl_client(id: u64) -> FlClient {
        let ds = Arc::new(SyntheticCifar100::with_classes(16, 2, 1));
        FlClient::new(
            id,
            DeviceProfile::trustzone(id),
            ds,
            (0..16).collect(),
            zoo::tiny_mlp(3 * 32 * 32, 4, 2, 1).unwrap(),
            Box::new(PlainSgdTrainer),
        )
    }

    #[test]
    fn sealed_session_handshakes_and_says_goodbye() {
        let (server_ep, client_ep) = channel_pair();
        let sealed_client = SealedClientEndpoint::established(client_ep, b"shared-secret");
        let session = ClientSession::new(fl_client(5), sealed_client);
        let handle = std::thread::spawn(move || session.serve());
        let sealed_server = SealedServerEndpoint::established(server_ep, b"shared-secret");
        let mut remote = RemoteClient::connect(Box::new(sealed_server)).unwrap();
        assert_eq!(remote.id(), 5);
        remote.goodbye().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn wire_bytes_are_ciphertext_and_roundtrip() {
        let mut server = SecureChannel::established(b"secret", Role::Server);
        let mut client = SecureChannel::established(b"secret", Role::Client);
        let hello = Envelope::pack(MessageKind::Hello, &Hello::current());
        let plain_bytes = encode(&hello);
        let carrier = seal_envelope(&mut server, &hello);
        // What crosses the wire is a Sealed carrier whose payload does not
        // contain the plaintext envelope.
        assert_eq!(carrier.kind, MessageKind::Sealed);
        let frame: Frame = decode(&carrier.payload).unwrap();
        assert_ne!(frame.ciphertext, plain_bytes);
        let opened = open_envelope(&mut client, &carrier).unwrap();
        assert_eq!(opened, hello);
    }

    #[test]
    fn replayed_carrier_is_rejected() {
        let mut server = SecureChannel::established(b"secret", Role::Server);
        let mut client = SecureChannel::established(b"secret", Role::Client);
        let carrier = seal_envelope(
            &mut server,
            &Envelope::pack(MessageKind::Hello, &Hello::current()),
        );
        open_envelope(&mut client, &carrier).unwrap();
        let err = open_envelope(&mut client, &carrier).unwrap_err();
        assert!(matches!(err, FlError::Tee(_)), "{err:?}");
    }

    #[test]
    fn mismatched_secrets_fail_integrity() {
        let (server_ep, client_ep) = channel_pair();
        let sealed_client = SealedClientEndpoint::established(client_ep, b"secret-b");
        let session = ClientSession::new(fl_client(2), sealed_client);
        let handle = std::thread::spawn(move || session.serve());
        let sealed_server = SealedServerEndpoint::established(server_ep, b"secret-a");
        let err = RemoteClient::connect(Box::new(sealed_server)).unwrap_err();
        // Either the client-side open failed (session tears down, channel
        // hangs up → transport error) or the server rejects the reply MAC.
        assert!(
            matches!(err, FlError::Tee(_) | FlError::Transport { .. }),
            "{err:?}"
        );
        let _ = handle.join().unwrap();
    }
}
