//! TCP transport: the same envelopes over real sockets.
//!
//! The [`Envelope`](crate::message::Envelope) binary layout doubles as
//! the socket frame — a fixed 13-byte header (magic, version, kind,
//! payload length) followed by exactly `payload length` bytes — so the
//! reader never needs to guess message boundaries and a hostile length
//! prefix is rejected before any allocation
//! ([`MAX_ENVELOPE_PAYLOAD`](crate::message::MAX_ENVELOPE_PAYLOAD)).
//!
//! Deployment shape: the FL server [`bind`]s and [`TcpListenerEndpoint::accept`]s
//! one connection per client; each client device [`connect`]s and runs a
//! [`ClientSession`](super::ClientSession) serve loop over its socket.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

use bytes::BytesMut;

use crate::message::{parse_envelope_head, Envelope, Wire, ENVELOPE_HEADER_LEN};
use crate::transport::{ClientEndpoint, ServerEndpoint};
use crate::{FlError, Result};

/// Writes one envelope to a stream (header + payload, single buffer).
///
/// `scratch` is the endpoint's write buffer, reused across frames: the
/// envelope is encoded into it in place and its capacity survives the
/// call, so steady-state rounds do one allocation per *session*, not one
/// (or, with the old `encode` → `to_vec` path, two) per envelope.
fn write_envelope<W: Write>(
    w: &mut W,
    scratch: &mut BytesMut,
    envelope: &Envelope,
    peer: &str,
) -> Result<()> {
    scratch.clear();
    envelope.encode_into(scratch);
    w.write_all(scratch.as_slice())
        .and_then(|()| w.flush())
        .map_err(|e| FlError::transport(format!("writing envelope to {peer}"), e))
}

/// Reads one envelope from a stream: fixed header first (parsed in place
/// by [`parse_envelope_head`] — no buffer allocation), then the
/// advertised payload length read directly into the envelope's own
/// buffer (no reassembly or second decode pass — this is the hot round
/// path, and the payload `Vec` is the envelope's storage, not scratch).
fn read_envelope<R: Read>(r: &mut R, peer: &str) -> Result<Envelope> {
    let mut header = [0u8; ENVELOPE_HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|e| FlError::transport(format!("reading envelope header from {peer}"), e))?;
    let head = parse_envelope_head(&header).map_err(|e| match e {
        FlError::Protocol { reason } => FlError::Protocol {
            reason: format!("{reason} (from {peer})"),
        },
        other => other,
    })?;
    let mut payload = vec![0u8; head.payload_len];
    r.read_exact(&mut payload)
        .map_err(|e| FlError::transport(format!("reading envelope payload from {peer}"), e))?;
    Ok(Envelope {
        version: head.version,
        kind: head.kind,
        payload,
    })
}

fn configure(stream: &TcpStream, peer: &str) -> Result<()> {
    // One small frame per exchange: Nagle only adds latency here.
    stream
        .set_nodelay(true)
        .map_err(|e| FlError::transport(format!("configuring socket to {peer}"), e))
}

/// The server's socket to one connected client.
#[derive(Debug)]
pub struct TcpServerEndpoint {
    stream: TcpStream,
    peer: String,
    /// Per-session write scratch (see [`write_envelope`]).
    scratch: BytesMut,
}

impl ServerEndpoint for TcpServerEndpoint {
    fn exchange(&mut self, request: Envelope) -> Result<Envelope> {
        write_envelope(&mut self.stream, &mut self.scratch, &request, &self.peer)?;
        read_envelope(&mut self.stream, &self.peer)
    }

    fn notify(&mut self, message: Envelope) -> Result<()> {
        write_envelope(&mut self.stream, &mut self.scratch, &message, &self.peer)
    }

    fn descriptor(&self) -> String {
        format!("tcp:{}", self.peer)
    }
}

/// The client's socket to the server.
#[derive(Debug)]
pub struct TcpClientEndpoint {
    stream: TcpStream,
    peer: String,
    /// Per-session write scratch (see [`write_envelope`]).
    scratch: BytesMut,
}

impl ClientEndpoint for TcpClientEndpoint {
    fn recv(&mut self) -> Result<Envelope> {
        read_envelope(&mut self.stream, &self.peer)
    }

    fn send(&mut self, reply: Envelope) -> Result<()> {
        write_envelope(&mut self.stream, &mut self.scratch, &reply, &self.peer)
    }

    fn descriptor(&self) -> String {
        format!("tcp:{}", self.peer)
    }
}

/// A listening FL server socket.
#[derive(Debug)]
pub struct TcpListenerEndpoint {
    listener: TcpListener,
}

impl TcpListenerEndpoint {
    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the socket is gone.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| FlError::transport("querying listener address", e))
    }

    /// Accepts one client connection, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] on accept failure.
    pub fn accept(&self) -> Result<TcpServerEndpoint> {
        let (stream, addr) = self
            .listener
            .accept()
            .map_err(|e| FlError::transport("accepting client connection", e))?;
        self.admit(stream, addr)
    }

    /// Deepens the accept backlog toward `backlog` connections (best
    /// effort — see
    /// [`deepen_listen_backlog`](crate::transport::poller::deepen_listen_backlog)).
    /// Call before wiring kilo-client fleets whose sessions all connect
    /// at once: the std default backlog of 128 drops the overflow SYNs
    /// into kernel retry backoff.
    pub fn deepen_backlog(&self, backlog: u32) -> bool {
        crate::transport::poller::deepen_listen_backlog(&self.listener, backlog)
    }

    /// Polls for one client connection without blocking: `Ok(None)` when
    /// nobody is waiting. Callers that interleave accepting with other
    /// work (liveness checks, deadlines) use this instead of [`accept`].
    ///
    /// [`accept`]: TcpListenerEndpoint::accept
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] on accept failure.
    pub fn try_accept(&self) -> Result<Option<TcpServerEndpoint>> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| FlError::transport("configuring listener", e))?;
        let polled = self.listener.accept();
        let restore = self.listener.set_nonblocking(false);
        match polled {
            Ok((stream, addr)) => {
                restore.map_err(|e| FlError::transport("configuring listener", e))?;
                self.admit(stream, addr).map(Some)
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                restore.map_err(|e| FlError::transport("configuring listener", e))?;
                Ok(None)
            }
            Err(e) => Err(FlError::transport("accepting client connection", e)),
        }
    }

    fn admit(&self, stream: TcpStream, addr: SocketAddr) -> Result<TcpServerEndpoint> {
        let peer = addr.to_string();
        // The listener may have been polled in non-blocking mode; the
        // session socket must block.
        stream
            .set_nonblocking(false)
            .map_err(|e| FlError::transport(format!("configuring socket to {peer}"), e))?;
        configure(&stream, &peer)?;
        Ok(TcpServerEndpoint {
            stream,
            peer,
            scratch: BytesMut::new(),
        })
    }
}

/// Binds the FL server's listening socket (use port 0 for an ephemeral
/// loopback port in tests).
///
/// # Errors
///
/// Returns [`FlError::Transport`] on bind failure.
pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<TcpListenerEndpoint> {
    let listener =
        TcpListener::bind(addr).map_err(|e| FlError::transport("binding server socket", e))?;
    Ok(TcpListenerEndpoint { listener })
}

/// Connects a client device to the FL server.
///
/// # Errors
///
/// Returns [`FlError::Transport`] on connect failure.
pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<TcpClientEndpoint> {
    let stream =
        TcpStream::connect(addr).map_err(|e| FlError::transport("connecting to server", e))?;
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_owned());
    configure(&stream, &peer)?;
    Ok(TcpClientEndpoint {
        stream,
        peer,
        scratch: BytesMut::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Hello, MessageKind};

    #[test]
    fn envelope_roundtrips_over_a_socket_pair() {
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut client = connect(addr).unwrap();
            let req = client.recv().unwrap();
            client.send(req).unwrap(); // echo
        });
        let mut server = listener.accept().unwrap();
        let sent = Envelope::pack(MessageKind::Hello, &Hello::current());
        let echoed = server.exchange(sent.clone()).unwrap();
        assert_eq!(sent, echoed);
        handle.join().unwrap();
    }

    #[test]
    fn bad_magic_is_a_protocol_error() {
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            s.write_all(&[0u8; ENVELOPE_HEADER_LEN]).unwrap();
        });
        let mut server = listener.accept().unwrap();
        let err = read_envelope(&mut server.stream, "test").unwrap_err();
        assert!(matches!(err, FlError::Protocol { .. }), "{err:?}");
        handle.join().unwrap();
    }

    #[test]
    fn closed_peer_is_a_transport_error() {
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let _ = connect(addr).unwrap();
            // drop: connection closes without a byte sent
        });
        let mut server = listener.accept().unwrap();
        client.join().unwrap();
        let err = read_envelope(&mut server.stream, "test").unwrap_err();
        assert!(matches!(err, FlError::Transport { .. }), "{err:?}");
    }
}
