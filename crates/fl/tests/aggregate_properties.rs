//! Property-based tests for the robust aggregation rules.
//!
//! The estimators defending hostile fleets ([`Aggregator::TrimmedMean`],
//! [`Aggregator::Median`], [`Aggregator::NormClip`]) must hold three
//! families of invariants:
//!
//! * **Permutation invariance** — the coordinate-wise estimators sort
//!   values per coordinate, so reassigning updates to different
//!   selection slots cannot move a single bit of the result.
//! * **Breakdown** — with at most `k` outliers among `n` honest updates
//!   (`k` within the estimator's breakdown point), the robust estimate
//!   stays at the honest value while plain FedAvg is dragged away.
//! * **Degenerate agreement** — `TrimmedMean { trim: 0 }` delegates
//!   literally to the FedAvg fold, and `NormClip` with a norm bound no
//!   update exceeds clips nothing, so both agree with plain FedAvg
//!   bit-for-bit.
//!
//! Every invariant is exercised on dense updates *and* on updates that
//! round-tripped through the `delta-topk` sparse codec — the realistic
//! shape a bandwidth-constrained hostile fleet uploads.

use gradsec_fl::aggregate::{Aggregator, PartialAggregate};
use gradsec_fl::codec::{decode_weights, encode_weights, CodecKind};
use gradsec_fl::message::UpdateUpload;
use gradsec_nn::model::{LayerWeights, ModelWeights};
use gradsec_tensor::{init, Tensor};
use proptest::prelude::*;

fn weights(layers: usize, width: usize, seed: u64) -> ModelWeights {
    ModelWeights::new(
        (0..layers)
            .map(|i| LayerWeights {
                w: init::uniform(&[width, width], -1.0, 1.0, seed + i as u64),
                b: init::uniform(&[width], -1.0, 1.0, seed + 100 + i as u64),
            })
            .collect(),
    )
}

fn constant(layers: usize, width: usize, value: f32) -> ModelWeights {
    ModelWeights::new(
        (0..layers)
            .map(|_| LayerWeights {
                w: Tensor::full(&[width, width], value),
                b: Tensor::full(&[width], value),
            })
            .collect(),
    )
}

fn upload(id: u64, w: ModelWeights, samples: usize) -> UpdateUpload {
    UpdateUpload {
        client_id: id,
        round: 0,
        weights: w,
        num_samples: samples,
        train_loss: 0.25,
        cost: Default::default(),
    }
}

/// Sends updates through the `delta-topk` sparse codec against `base`,
/// producing the sparse-realistic weights a bandwidth-capped client
/// actually uploads (most coordinates collapsed back to the base).
fn through_topk(w: &ModelWeights, base: &ModelWeights, id: u64) -> ModelWeights {
    let enc = encode_weights(CodecKind::DeltaTopK, id, w, Some((id, base)));
    decode_weights(&enc, Some(base)).expect("topk round-trip decodes")
}

/// Aggregates `uploads` at the given selection slots under `rule`.
fn aggregate(
    uploads: &[UpdateUpload],
    slots: &[usize],
    rule: Aggregator,
    reference: Option<&ModelWeights>,
) -> ModelWeights {
    let mut partial = PartialAggregate::new();
    for (u, &s) in uploads.iter().zip(slots) {
        partial.push(s, u.clone());
    }
    partial
        .finish_with(rule, reference)
        .expect("aggregation succeeds")
        .weights
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn robust_rules_are_slot_permutation_invariant(
        n in 3usize..8,
        rot in 1usize..8,
        layers in 1usize..3,
        width in 1usize..4,
        seed in any::<u64>(),
        sparse in any::<bool>(),
    ) {
        let base = weights(layers, width, seed ^ 0xBA5E);
        let uploads: Vec<UpdateUpload> = (0..n)
            .map(|i| {
                let w = weights(layers, width, seed.wrapping_add(i as u64));
                let w = if sparse { through_topk(&w, &base, i as u64) } else { w };
                upload(i as u64, w, 3 + i)
            })
            .collect();
        let straight: Vec<usize> = (0..n).collect();
        // A cyclic slot permutation: same updates, different canonical
        // ordering after the slot sort.
        let rotated: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        for rule in [Aggregator::TrimmedMean { trim: 1 }, Aggregator::Median] {
            let a = aggregate(&uploads, &straight, rule, None);
            let b = aggregate(&uploads, &rotated, rule, None);
            prop_assert_eq!(a, b, "{} moved under slot permutation", rule.name());
        }
    }

    #[test]
    fn trimming_survives_up_to_trim_outliers_per_side(
        honest in 3usize..7,
        trim in 1usize..3,
        value in -1.0f32..1.0,
        magnitude in 10.0f32..1e6,
        layers in 1usize..3,
        width in 1usize..4,
        low_side in any::<bool>(),
    ) {
        // `trim` outliers (all on one side) among `honest` identical
        // updates: the trimmed mean recovers the honest value exactly —
        // every surviving coordinate equals it — while plain FedAvg is
        // dragged toward the outliers.
        prop_assume!(2 * trim < honest + trim);
        let spike = if low_side { -magnitude } else { magnitude };
        let mut uploads: Vec<UpdateUpload> = (0..honest)
            .map(|i| upload(i as u64, constant(layers, width, value), 4))
            .collect();
        for j in 0..trim {
            uploads.push(upload(
                (honest + j) as u64,
                constant(layers, width, spike),
                4,
            ));
        }
        let slots: Vec<usize> = (0..uploads.len()).collect();
        let robust = aggregate(&uploads, &slots, Aggregator::TrimmedMean { trim }, None);
        // Every kept coordinate equals the honest value; the mean of k
        // identical f32s recovers it up to one rounding step.
        let slack = value.abs() * 1e-5 + 1e-6;
        for l in robust.iter() {
            for x in l.w.data().iter().chain(l.b.data()) {
                prop_assert!((x - value).abs() <= slack, "|{x} - {value}| > {slack}");
            }
        }
        let plain = aggregate(&uploads, &slots, Aggregator::FedAvg, None);
        let dragged = plain.layer(0).unwrap().w.data()[0];
        prop_assert!((dragged - value).abs() > 1.0, "fedavg survived {spike}: {dragged}");
    }

    #[test]
    fn median_survives_any_minority_of_outliers(
        honest in 3usize..7,
        outliers in 1usize..3,
        value in -1.0f32..1.0,
        magnitude in 10.0f32..1e6,
        layers in 1usize..3,
        width in 1usize..4,
        low_side in any::<bool>(),
    ) {
        prop_assume!(outliers + 1 < honest);
        let spike = if low_side { -magnitude } else { magnitude };
        let mut uploads: Vec<UpdateUpload> = (0..honest)
            .map(|i| upload(i as u64, constant(layers, width, value), 4))
            .collect();
        for j in 0..outliers {
            uploads.push(upload(
                (honest + j) as u64,
                constant(layers, width, spike),
                4,
            ));
        }
        let slots: Vec<usize> = (0..uploads.len()).collect();
        let robust = aggregate(&uploads, &slots, Aggregator::Median, None);
        for l in robust.iter() {
            for x in l.w.data().iter().chain(l.b.data()) {
                prop_assert_eq!(*x, value);
            }
        }
    }

    #[test]
    fn zero_trim_is_bit_identical_to_fedavg(
        n in 1usize..6,
        layers in 1usize..3,
        width in 1usize..4,
        seed in any::<u64>(),
        sparse in any::<bool>(),
    ) {
        let base = weights(layers, width, seed ^ 0xF00D);
        let uploads: Vec<UpdateUpload> = (0..n)
            .map(|i| {
                let w = weights(layers, width, seed.wrapping_add(i as u64));
                let w = if sparse { through_topk(&w, &base, i as u64) } else { w };
                upload(i as u64, w, 2 + i)
            })
            .collect();
        let slots: Vec<usize> = (0..n).collect();
        let plain = aggregate(&uploads, &slots, Aggregator::FedAvg, None);
        let trimmed = aggregate(&uploads, &slots, Aggregator::TrimmedMean { trim: 0 }, None);
        prop_assert_eq!(plain, trimmed);
    }

    #[test]
    fn generous_clipping_is_bit_identical_to_fedavg(
        n in 1usize..6,
        layers in 1usize..3,
        width in 1usize..4,
        seed in any::<u64>(),
    ) {
        // Every delta from the reference is bounded (weights live in
        // [-1, 1]); a tau above any reachable norm clips nothing, and
        // the unclipped path hands the literal updates to the FedAvg
        // fold.
        let reference = weights(layers, width, seed ^ 0xCAFE);
        let uploads: Vec<UpdateUpload> = (0..n)
            .map(|i| upload(i as u64, weights(layers, width, seed.wrapping_add(i as u64)), 2 + i))
            .collect();
        let slots: Vec<usize> = (0..n).collect();
        let plain = aggregate(&uploads, &slots, Aggregator::FedAvg, None);
        let clipped = aggregate(
            &uploads,
            &slots,
            Aggregator::NormClip { tau: 1e6 },
            Some(&reference),
        );
        prop_assert_eq!(plain, clipped);
    }

    #[test]
    fn clipped_aggregate_stays_within_tau_of_the_reference(
        n in 1usize..5,
        tau in 0.1f32..2.0,
        magnitude in 2.0f32..100.0,
        layers in 1usize..3,
        width in 1usize..4,
        seed in any::<u64>(),
    ) {
        // Each clipped delta has norm at most tau; FedAvg is a convex
        // combination, so the committed model's delta cannot exceed it
        // either (up to f32 rounding slack).
        let reference = weights(layers, width, seed ^ 0x7AB5);
        let uploads: Vec<UpdateUpload> = (0..n)
            .map(|i| {
                let mut w = reference.clone();
                w.add_scaled(&constant(layers, width, magnitude), 1.0).unwrap();
                upload(i as u64, w, 3)
            })
            .collect();
        let slots: Vec<usize> = (0..n).collect();
        let clipped = aggregate(
            &uploads,
            &slots,
            Aggregator::NormClip { tau },
            Some(&reference),
        );
        let mut sum = 0.0f64;
        for (a, b) in clipped.iter().zip(reference.iter()) {
            for (x, y) in a.w.data().iter().zip(b.w.data()) {
                sum += f64::from(x - y) * f64::from(x - y);
            }
            for (x, y) in a.b.data().iter().zip(b.b.data()) {
                sum += f64::from(x - y) * f64::from(x - y);
            }
        }
        let norm = sum.sqrt();
        prop_assert!(
            norm <= f64::from(tau) * 1.001 + 1e-4,
            "aggregate delta norm {norm} exceeds tau {tau}"
        );
    }

    #[test]
    fn sparse_and_dense_outlier_breakdown_agree(
        honest in 3usize..6,
        value in -0.5f32..0.5,
        layers in 1usize..3,
        width in 1usize..4,
    ) {
        // The breakdown property holds identically when the hostile
        // update arrives through the sparse codec: top-k keeps the
        // largest-magnitude deltas, which for a spiked update are the
        // spikes themselves.
        let base = constant(layers, width, value);
        let spike = constant(layers, width, 1e5);
        let sparse_spike = through_topk(&spike, &base, 99);
        let mut uploads: Vec<UpdateUpload> = (0..honest)
            .map(|i| upload(i as u64, base.clone(), 4))
            .collect();
        uploads.push(upload(honest as u64, sparse_spike, 4));
        let slots: Vec<usize> = (0..uploads.len()).collect();
        let robust = aggregate(&uploads, &slots, Aggregator::TrimmedMean { trim: 1 }, None);
        let slack = value.abs() * 1e-5 + 1e-6;
        for l in robust.iter() {
            for x in l.w.data().iter().chain(l.b.data()) {
                prop_assert!((x - value).abs() <= slack, "|{x} - {value}| > {slack}");
            }
        }
    }
}
