//! Property-based tests for the execution engine's schedule handling.
//!
//! For *arbitrary* pick sets — empty, singleton, duplicated, out-of-order,
//! out-of-range — the sequential and parallel engines must agree exactly:
//! the same `Err` for malformed schedules, and bit-identical per-client
//! outcomes plus TEE ledgers for legal ones. This pins down the two
//! historical failure modes: duplicate picks panicking the slot collector,
//! and a worker panic aborting the whole process.

use std::sync::Arc;

use proptest::prelude::*;

use gradsec_data::{split, Dataset, SyntheticMicro};
use gradsec_fl::client::{DeviceProfile, FlClient};
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::message::ModelDownload;
use gradsec_fl::trainer::PlainSgdTrainer;
use gradsec_fl::transport::inprocess::LocalEndpoint;
use gradsec_fl::transport::RemoteClient;
use gradsec_fl::{ExecutionEngine, FlError};
use gradsec_nn::zoo;

const N_CLIENTS: usize = 5;
const DIM: usize = 6;

fn plan() -> TrainingPlan {
    TrainingPlan {
        rounds: 1,
        clients_per_round: N_CLIENTS,
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 11,
    }
}

fn fleet() -> Vec<RemoteClient> {
    let ds = Arc::new(SyntheticMicro::new(4 * N_CLIENTS, 2, DIM, 3));
    let shards = split::shard(ds.len(), N_CLIENTS, 1);
    (0..N_CLIENTS)
        .zip(shards)
        .map(|(i, shard)| {
            let client = FlClient::new(
                i as u64,
                DeviceProfile::trustzone(i as u64),
                ds.clone(),
                shard,
                zoo::tiny_mlp(DIM, 4, 2, 5).unwrap(),
                Box::new(PlainSgdTrainer),
            );
            RemoteClient::connect(Box::new(LocalEndpoint::new(client))).unwrap()
        })
        .collect()
}

fn download() -> ModelDownload {
    ModelDownload {
        round: 0,
        weights: zoo::tiny_mlp(DIM, 4, 2, 5).unwrap().weights(),
        plan: plan(),
        protected_layers: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential and parallel engines agree — outcome for outcome,
    /// ledger for ledger, error for error — on any schedule.
    #[test]
    fn sequential_and_parallel_agree_on_arbitrary_picks(
        picked in proptest::collection::vec(0usize..N_CLIENTS + 2, 0..2 * N_CLIENTS),
        workers in 2usize..5,
    ) {
        let download = download();
        let mut seq_fleet = fleet();
        let seq = ExecutionEngine::sequential().execute_cycles(&mut seq_fleet, &picked, &download);
        let mut par_fleet = fleet();
        let par = ExecutionEngine::new(workers).execute_cycles(&mut par_fleet, &picked, &download);
        prop_assert_eq!(&seq, &par);
        // Malformed schedules fail identically and cleanly.
        let duplicated = picked.iter().any(|a| picked.iter().filter(|b| *b == a).count() > 1);
        let out_of_range = picked.iter().any(|&p| p >= N_CLIENTS);
        if duplicated || out_of_range {
            prop_assert!(matches!(seq, Err(FlError::InvalidSelection { .. })));
        } else {
            let (outcomes, ledger) = seq.unwrap();
            prop_assert_eq!(outcomes.len(), picked.len());
            prop_assert!(outcomes.iter().all(gradsec_fl::ClientOutcome::is_completed));
            prop_assert_eq!(ledger.len(), picked.len());
            // Slots line up with the pick order.
            for (slot, &ci) in picked.iter().enumerate() {
                prop_assert_eq!(outcomes[slot].client_id(), ci as u64);
            }
        }
    }

    /// Shard-partitioned execution equals flat execution for any cut of
    /// the fleet and any sorted pick set.
    #[test]
    fn execute_shards_agrees_with_flat_execution(
        picked in proptest::collection::btree_set(0usize..N_CLIENTS, 0..N_CLIENTS + 1),
        cut in 1usize..N_CLIENTS,
        workers in 1usize..4,
    ) {
        let picked: Vec<usize> = picked.iter().copied().collect();
        let download = download();
        let engine = ExecutionEngine::new(workers);
        let mut flat_fleet = fleet();
        let (flat_outcomes, flat_ledger) =
            engine.execute_cycles(&mut flat_fleet, &picked, &download).unwrap();
        let mut front = fleet();
        let mut back = front.split_off(cut);
        let front_picks: Vec<usize> = picked.iter().copied().filter(|&p| p < cut).collect();
        let back_picks: Vec<usize> =
            picked.iter().copied().filter(|&p| p >= cut).map(|p| p - cut).collect();
        let per_shard = engine
            .execute_shards(
                vec![
                    (front.as_mut_slice(), front_picks),
                    (back.as_mut_slice(), back_picks),
                ],
                &download,
            )
            .unwrap();
        let mut merged_ledger = gradsec_tee::cost::RoundLedger::new();
        let mut merged_outcomes = Vec::new();
        for (outcomes, ledger) in per_shard {
            merged_outcomes.extend(outcomes);
            merged_ledger.merge(&ledger);
        }
        prop_assert_eq!(merged_outcomes, flat_outcomes);
        prop_assert_eq!(merged_ledger, flat_ledger);
    }
}
