//! Chaos-style property tests: *arbitrary* fault plans driven through the
//! whole federation stack.
//!
//! For any combination of dropout, message drop/garble probabilities,
//! latency distribution, round deadline and selection spare, a faulted
//! run must be bit-identical between the sequential and parallel engines
//! and between flat and sharded fleets — same per-round reports
//! (participants, surplus, stragglers, failures, ledgers), same final
//! weights, and when a round collapses entirely, the *same error*. The
//! fault layer's determinism is the property under test: every fault
//! decision must be a pure function of `(seed, client, round/message)`,
//! never of scheduling.

use std::sync::Arc;

use proptest::prelude::*;

use gradsec_data::SyntheticMicro;
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::runner::{Federation, FederationBuilder};
use gradsec_fl::{ExecutionEngine, FaultPlan, LatencyModel};
use gradsec_nn::zoo;

const CLIENTS: usize = 5;
const DIM: usize = 6;

fn plan() -> TrainingPlan {
    TrainingPlan {
        rounds: 2,
        clients_per_round: 3,
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 23,
    }
}

fn builder(faults: FaultPlan) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(4 * CLIENTS, 2, DIM, 3));
    Federation::builder(plan())
        .model(|| zoo::tiny_mlp(DIM, 4, 2, 5).unwrap())
        .clients(CLIENTS, data)
        .faults(faults)
}

/// Decodes a drawn latency selector into a model (the vendored proptest
/// has no enum strategies, so the case index is drawn as an integer).
fn latency_model(kind: usize, a: f64, b: f64) -> LatencyModel {
    match kind {
        0 => LatencyModel::None,
        1 => LatencyModel::Fixed(a),
        2 => LatencyModel::Uniform {
            min_s: a.min(b),
            max_s: a.min(b) + (a - b).abs(),
        },
        _ => LatencyModel::Exponential { mean_s: a },
    }
}

/// One arbitrary-but-valid fault plan from drawn knobs.
#[allow(clippy::too_many_arguments)]
fn fault_plan(
    seed: u64,
    dropout: f64,
    drop_p: f64,
    garble_p: f64,
    latency_kind: usize,
    lat_a: f64,
    lat_b: f64,
    deadline_ds: usize,
    spare: usize,
) -> FaultPlan {
    let mut plan = FaultPlan::seeded(seed)
        .dropout(dropout)
        .drop_messages(drop_p)
        .garble_replies(garble_p)
        .latency(latency_model(latency_kind, lat_a, lat_b))
        .spare(spare);
    if deadline_ds > 0 {
        plan = plan.deadline_s(deadline_ds as f64 / 10.0);
    }
    plan.validate().expect("drawn plans are in range");
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Sequential and parallel engines agree bit-for-bit on any fault
    /// plan — including the rounds that error out entirely.
    #[test]
    fn seq_and_parallel_agree_under_arbitrary_faults(
        seed in 0u64..1_000_000,
        dropout in 0.0f64..0.5,
        drop_p in 0.0f64..0.3,
        garble_p in 0.0f64..0.3,
        latency_kind in 0usize..4,
        lat_a in 0.0f64..3.0,
        lat_b in 0.0f64..3.0,
        deadline_ds in 0usize..40,
        spare in 0usize..3,
        workers in 2usize..5,
    ) {
        let faults = || fault_plan(
            seed, dropout, drop_p, garble_p,
            latency_kind, lat_a, lat_b, deadline_ds, spare,
        );
        let mut seq = builder(faults()).build().unwrap();
        let seq_report = seq.run_with(&ExecutionEngine::sequential());
        let mut par = builder(faults()).build().unwrap();
        let par_report = par.run_with(&ExecutionEngine::new(workers));
        prop_assert_eq!(&seq_report, &par_report, "workers={}", workers);
        if seq_report.is_ok() {
            prop_assert_eq!(seq.server().global(), par.server().global());
        }
    }

    /// Flat and sharded fleets agree bit-for-bit on any fault plan and
    /// any shard count.
    #[test]
    fn flat_and_sharded_agree_under_arbitrary_faults(
        seed in 0u64..1_000_000,
        dropout in 0.0f64..0.5,
        drop_p in 0.0f64..0.3,
        garble_p in 0.0f64..0.3,
        latency_kind in 0usize..4,
        lat_a in 0.0f64..3.0,
        lat_b in 0.0f64..3.0,
        deadline_ds in 0usize..40,
        spare in 0usize..3,
        shards in 1usize..5,
        workers in 1usize..4,
    ) {
        let faults = || fault_plan(
            seed, dropout, drop_p, garble_p,
            latency_kind, lat_a, lat_b, deadline_ds, spare,
        );
        let mut flat = builder(faults()).build().unwrap();
        let flat_report = flat.run();
        let mut sharded = builder(faults())
            .shards(shards)
            .engine(ExecutionEngine::new(workers))
            .build_sharded()
            .unwrap();
        let sharded_report = sharded.run();
        prop_assert_eq!(
            &flat_report, &sharded_report,
            "shards={} workers={}", shards, workers
        );
        if flat_report.is_ok() {
            prop_assert_eq!(flat.server().global(), sharded.server().global());
        }
    }

    /// The report's cohort partition is always coherent: the four groups
    /// are disjoint, cover the ledger, commit at most `clients_per_round`
    /// updates, and the ledger bills every selected client exactly once.
    #[test]
    fn faulted_reports_partition_the_cohort(
        seed in 0u64..1_000_000,
        dropout in 0.0f64..0.4,
        drop_p in 0.0f64..0.25,
        garble_p in 0.0f64..0.25,
        deadline_ds in 0usize..30,
        spare in 0usize..3,
    ) {
        let faults = fault_plan(
            seed, dropout, drop_p, garble_p, 3, 1.0, 0.0, deadline_ds, spare,
        );
        let mut fed = builder(faults).build().unwrap();
        // A fully-collapsed run is legal under heavy faults (the
        // agreement properties above pin its determinism); the cohort
        // invariants only apply to the rounds that completed.
        let rounds = fed.run().map(|r| r.rounds).unwrap_or_default();
        let k = plan().clients_per_round;
        for round in &rounds {
            prop_assert!(!round.participants.is_empty());
            prop_assert!(round.participants.len() <= k);
            let mut cohort: Vec<usize> = round
                .participants
                .iter()
                .chain(&round.surplus)
                .chain(&round.stragglers)
                .chain(&round.failures)
                .copied()
                .collect();
            let total = cohort.len();
            cohort.sort_unstable();
            cohort.dedup();
            prop_assert_eq!(cohort.len(), total, "groups overlap");
            prop_assert!(total <= k + spare);
            // Every selected client is accounted in the ledger.
            prop_assert_eq!(round.ledger.len(), total);
            for &ci in &cohort {
                prop_assert!(round.ledger.client(ci as u64).is_some());
            }
        }
    }
}
