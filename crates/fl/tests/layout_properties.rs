//! Property-based tests for [`ShardLayout`] itself.
//!
//! The layout's invariants were previously pinned only indirectly,
//! through `execute_shards` agreeing with flat execution; these
//! properties exercise the partition directly across the degenerate
//! corners — 0- and 1-client fleets, more shards than clients, shard
//! count 0 — where clamping and near-equal sizing must still hold.

use proptest::prelude::*;

use gradsec_fl::ShardLayout;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Shard counts clamp into `1..=max(1, clients)` and the ranges
    /// partition `0..clients` contiguously with near-equal sizes.
    #[test]
    fn layout_partitions_contiguously_with_clamping(
        clients in 0usize..60,
        shards in 0usize..80,
    ) {
        let layout = ShardLayout::new(clients, shards);
        prop_assert_eq!(layout.num_clients(), clients);
        prop_assert!(layout.num_shards() >= 1);
        prop_assert!(layout.num_shards() <= clients.max(1));
        if (1..=clients).contains(&shards) {
            prop_assert_eq!(layout.num_shards(), shards);
        }
        // Contiguous cover of 0..clients, in order.
        let mut at = 0;
        let mut sizes = Vec::new();
        for s in 0..layout.num_shards() {
            let range = layout.range(s);
            prop_assert_eq!(range.start, at);
            at = range.end;
            sizes.push(range.len());
        }
        prop_assert_eq!(at, clients);
        // Near-equal: no two shards differ by more than one client, and
        // the remainder lands on the leading shards.
        let min = sizes.iter().copied().min().unwrap_or(0);
        let max = sizes.iter().copied().max().unwrap_or(0);
        prop_assert!(max - min <= 1, "sizes {sizes:?}");
        prop_assert!(
            sizes.windows(2).all(|w| w[0] >= w[1]),
            "remainder must lead: {sizes:?}"
        );
    }

    /// `shard_of` agrees with the ranges for every client.
    #[test]
    fn shard_of_matches_the_owning_range(
        clients in 1usize..60,
        shards in 0usize..80,
    ) {
        let layout = ShardLayout::new(clients, shards);
        for client in 0..clients {
            let s = layout.shard_of(client);
            prop_assert!(
                layout.range(s).contains(&client),
                "client {client} mapped to shard {s} ({:?})",
                layout.range(s)
            );
        }
    }

    /// `split_picks` preserves global order: concatenating the per-shard
    /// local lists (offsets restored) in shard order reproduces the
    /// global pick set exactly — including empty pick sets and picks
    /// concentrated in one shard.
    #[test]
    fn split_picks_roundtrips_any_pick_set(
        clients in 1usize..50,
        shards in 1usize..60,
        raw_picks in proptest::collection::btree_set(0usize..50, 0..24),
    ) {
        let picked: Vec<usize> = raw_picks.into_iter().filter(|&p| p < clients).collect();
        let layout = ShardLayout::new(clients, shards);
        let per_shard = layout.split_picks(&picked);
        prop_assert_eq!(per_shard.len(), layout.num_shards());
        let mut restored = Vec::new();
        for (s, locals) in per_shard.iter().enumerate() {
            let range = layout.range(s);
            for &local in locals {
                prop_assert!(local < range.len(), "local pick out of shard range");
                restored.push(range.start + local);
            }
        }
        prop_assert_eq!(restored, picked);
    }
}

/// The two fleet sizes too small for the proptest ranges above to dwell
/// on, pinned explicitly: the empty fleet and the singleton fleet.
#[test]
fn zero_and_one_client_fleets_degenerate_cleanly() {
    for shards in [0usize, 1, 3, 17] {
        let empty = ShardLayout::new(0, shards);
        assert_eq!(empty.num_shards(), 1);
        assert_eq!(empty.num_clients(), 0);
        assert_eq!(empty.range(0), 0..0);
        assert_eq!(empty.split_picks(&[]), vec![Vec::<usize>::new()]);

        let single = ShardLayout::new(1, shards);
        assert_eq!(single.num_shards(), 1);
        assert_eq!(single.num_clients(), 1);
        assert_eq!(single.range(0), 0..1);
        assert_eq!(single.shard_of(0), 0);
        assert_eq!(single.split_picks(&[0]), vec![vec![0]]);
    }
}

#[test]
#[should_panic(expected = "out of range")]
fn shard_of_panics_past_the_fleet() {
    ShardLayout::new(4, 2).shard_of(4);
}
