//! Property-based tests for the multiplexed transport's frame
//! reassembler.
//!
//! The mux event loop sees the protocol as the kernel delivers it:
//! arbitrary chunks that straddle header and payload boundaries,
//! coalesce several frames, or carry a single byte. Whatever the
//! chunking, [`FrameReassembler`] must emit exactly the envelopes that
//! were written — every [`MessageKind`] the protocol speaks, in order,
//! bit-identical — and reject a corrupt header without reading past it.

use gradsec_fl::codec::{encode_weights, CodecKind};
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::message::{
    encode, AttestationRequest, AttestationResponse, EncodedModelDownload, EncodedUpdateUpload,
    Envelope, ErrorReply, Hello, HelloAck, MessageKind, ModelDownload, UpdateUpload,
    ENVELOPE_HEADER_LEN,
};
use gradsec_fl::transport::mux::FrameReassembler;
use gradsec_nn::model::{LayerWeights, ModelWeights};
use gradsec_tee::attestation::{sign_quote, Challenge, Measurement};
use gradsec_tee::cost::{ClientCycleCost, TimeBreakdown, WireBill};
use gradsec_tee::ta::Uuid;
use gradsec_tee::tiop::SecureChannel;
use gradsec_tensor::init;
use proptest::prelude::*;

fn weights(layers: usize, width: usize, seed: u64) -> ModelWeights {
    ModelWeights::new(
        (0..layers)
            .map(|i| LayerWeights {
                w: init::uniform(&[width, width], -1.0, 1.0, seed + i as u64),
                b: init::uniform(&[width], -1.0, 1.0, seed + 100 + i as u64),
            })
            .collect(),
    )
}

/// One representative envelope per [`MessageKind`], parameterised by a
/// seed so payload bytes (and sizes) vary across proptest cases. Index
/// is the `MessageKind` discriminant: the strategies below pick kinds by
/// index, so this covers the protocol exhaustively by construction.
fn envelope_of(kind_index: usize, seed: u64) -> Envelope {
    let width = 1 + (seed % 4) as usize;
    match kind_index {
        0 => Envelope::pack(MessageKind::Hello, &Hello::current()),
        1 => Envelope::pack(
            MessageKind::HelloAck,
            &HelloAck {
                version: 2,
                client_id: seed,
                codec: codec_of(seed),
            },
        ),
        2 => Envelope::pack(
            MessageKind::AttestationRequest,
            &AttestationRequest {
                challenge: Challenge::new([seed as u8; 16]),
            },
        ),
        3 => {
            let challenge = Challenge::new([seed as u8; 16]);
            let quote = seed.is_multiple_of(2).then(|| {
                sign_quote(
                    &seed.to_le_bytes(),
                    Uuid::from_name("ta"),
                    Measurement([7u8; 32]),
                    &challenge,
                )
            });
            Envelope::pack(
                MessageKind::AttestationResponse,
                &AttestationResponse { quote },
            )
        }
        4 => Envelope::pack(
            MessageKind::ModelDownload,
            &ModelDownload {
                round: seed,
                weights: weights(1 + (seed % 3) as usize, width, seed),
                plan: TrainingPlan::default(),
                protected_layers: vec![(seed % 5) as usize],
            },
        ),
        5 => Envelope::pack(
            MessageKind::UpdateUpload,
            &UpdateUpload {
                client_id: seed,
                round: 3,
                weights: weights(1, width, seed),
                num_samples: 10,
                train_loss: 0.5,
                cost: ClientCycleCost {
                    client_id: seed,
                    time: TimeBreakdown {
                        user_s: 2.0,
                        kernel_s: 0.25,
                        alloc_s: 4.5,
                    },
                    crossings: seed,
                    tee_peak_bytes: width << 10,
                    wire: WireBill {
                        download_encoded_bytes: seed,
                        download_raw_bytes: seed * 3,
                        upload_encoded_bytes: seed + 1,
                        upload_raw_bytes: (seed + 1) * 3,
                    },
                },
            },
        ),
        6 => Envelope::pack(
            MessageKind::Error,
            &ErrorReply {
                reason: format!("injected fault {seed}"),
            },
        ),
        7 => Envelope::control(MessageKind::Goodbye),
        8 => {
            let (mut tx, _rx) = SecureChannel::pair(&seed.to_le_bytes());
            let frame = tx.seal(&seed.to_le_bytes());
            Envelope::pack(MessageKind::Sealed, &frame)
        }
        9 => Envelope::pack(
            MessageKind::EncodedModelDownload,
            &EncodedModelDownload {
                round: seed,
                weights: encoded_weights_of(seed, width),
                plan: TrainingPlan::default(),
                protected_layers: vec![(seed % 5) as usize],
            },
        ),
        _ => Envelope::pack(
            MessageKind::EncodedUpdateUpload,
            &EncodedUpdateUpload {
                client_id: seed,
                round: 3,
                weights: encoded_weights_of(seed, width),
                num_samples: 10,
                train_loss: 0.5,
                cost: ClientCycleCost {
                    client_id: seed,
                    time: TimeBreakdown::default(),
                    crossings: seed,
                    tee_peak_bytes: width << 10,
                    wire: WireBill::default(),
                },
            },
        ),
    }
}

/// Cycles through every codec so encoded payloads of all three body
/// layouts cross the reassembler.
fn codec_of(seed: u64) -> CodecKind {
    match seed % 3 {
        0 => CodecKind::Identity,
        1 => CodecKind::Int8,
        _ => CodecKind::DeltaTopK,
    }
}

fn encoded_weights_of(seed: u64, width: usize) -> gradsec_fl::codec::EncodedWeights {
    let codec = codec_of(seed);
    let w = weights(1 + (seed % 3) as usize, width, seed);
    let base = weights(1 + (seed % 3) as usize, width, seed + 9);
    let reference = (codec == CodecKind::DeltaTopK).then_some((seed, &base));
    encode_weights(codec, seed + 1, &w, reference)
}

const NUM_KINDS: usize = 11;

/// Splits `bytes` into chunks following the (cycled) size schedule and
/// feeds each chunk to a fresh reassembler, returning the emitted frames.
fn reassemble(bytes: &[u8], schedule: &[usize]) -> Vec<Envelope> {
    let mut rx = FrameReassembler::new();
    let mut out = Vec::new();
    let mut offset = 0;
    let mut turn = 0;
    while offset < bytes.len() {
        let take = schedule[turn % schedule.len()].min(bytes.len() - offset);
        rx.feed(&bytes[offset..offset + take], &mut out)
            .expect("well-formed stream reassembles");
        offset += take;
        turn += 1;
    }
    assert!(
        !rx.mid_frame(),
        "stream fully consumed but reassembler still mid-frame"
    );
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sequence of protocol messages, chunked at arbitrary split
    /// points, reassembles to exactly the envelopes written.
    #[test]
    fn arbitrary_chunking_reassembles_every_kind(
        kinds in proptest::collection::vec(0usize..NUM_KINDS, 1..8),
        seed in 0u64..1000,
        schedule in proptest::collection::vec(1usize..97, 1..24),
    ) {
        let envelopes: Vec<Envelope> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| envelope_of(k, seed + i as u64))
            .collect();
        let mut stream = Vec::new();
        for env in &envelopes {
            stream.extend_from_slice(&encode(env));
        }
        let back = reassemble(&stream, &schedule);
        prop_assert_eq!(back, envelopes);
    }

    /// The pathological schedule: one byte per read. Every header and
    /// payload boundary is straddled; the result must still be exact.
    #[test]
    fn one_byte_reads_reassemble_every_kind(kind in 0usize..NUM_KINDS, seed in 0u64..1000) {
        let env = envelope_of(kind, seed);
        let back = reassemble(&encode(&env), &[1]);
        prop_assert_eq!(back, vec![env]);
    }

    /// Back-to-back zero-payload frames (the Goodbye shape) emit one
    /// envelope per header even when a chunk ends exactly on a header
    /// boundary — the reassembler must not hold a completed frame
    /// hostage waiting for bytes that never come.
    #[test]
    fn zero_payload_frames_emit_at_chunk_boundaries(n in 1usize..6, schedule in proptest::collection::vec(1usize..14, 1..6)) {
        let goodbye = Envelope::control(MessageKind::Goodbye);
        let mut stream = Vec::new();
        for _ in 0..n {
            stream.extend_from_slice(&encode(&goodbye));
        }
        // Also check the exact-header-boundary schedule explicitly.
        for sched in [schedule.as_slice(), &[ENVELOPE_HEADER_LEN]] {
            let back = reassemble(&stream, sched);
            prop_assert_eq!(back.len(), n);
            prop_assert!(back.iter().all(|e| e == &goodbye));
        }
    }

    /// A corrupted header (bad magic) is a protocol error as soon as the
    /// 13th header byte lands, regardless of how the stream was chunked
    /// before it — never a panic, never a wild allocation.
    #[test]
    fn corrupt_magic_errors_at_any_split(byte in 0u8..0x46, split in 1usize..ENVELOPE_HEADER_LEN) {
        // 0x47 is the low magic byte; anything below it is corrupt.
        let mut bytes = encode(&Envelope::control(MessageKind::Goodbye));
        bytes[0] = byte;
        let mut rx = FrameReassembler::new();
        let mut out = Vec::new();
        // The split lands inside the header: the first feed must be
        // clean (no full header yet), the second must reject.
        prop_assert!(rx.feed(&bytes[..split], &mut out).is_ok());
        prop_assert!(rx.feed(&bytes[split..], &mut out).is_err());
        prop_assert!(out.is_empty());
    }
}
