//! Property-based tests for the FL wire protocol and aggregation.

use gradsec_fl::aggregate::fedavg;
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::message::{decode, encode, ModelDownload, UpdateUpload};
use gradsec_nn::model::{LayerWeights, ModelWeights};
use gradsec_tensor::{init, Tensor};
use proptest::prelude::*;

fn weights(layers: usize, width: usize, seed: u64) -> ModelWeights {
    ModelWeights::new(
        (0..layers)
            .map(|i| LayerWeights {
                w: init::uniform(&[width, width], -1.0, 1.0, seed + i as u64),
                b: init::uniform(&[width], -1.0, 1.0, seed + 100 + i as u64),
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tensor_wire_roundtrip(r in 1usize..5, c in 1usize..6, seed in 0u64..1000) {
        let t = init::uniform(&[r, c], -100.0, 100.0, seed);
        let back: Tensor = decode(&encode(&t)).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn download_wire_roundtrip(layers in 1usize..4, width in 1usize..5, round in 0u64..1000, prot in proptest::collection::vec(0usize..8, 0..4)) {
        let msg = ModelDownload {
            round,
            weights: weights(layers, width, round),
            plan: TrainingPlan::default(),
            protected_layers: prot,
        };
        let back: ModelDownload = decode(&encode(&msg)).unwrap();
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn truncated_messages_never_panic(cut in 0usize..200) {
        let msg = UpdateUpload {
            client_id: 1,
            round: 2,
            weights: weights(2, 3, 7),
            num_samples: 10,
            train_loss: 0.5,
        };
        let mut bytes = encode(&msg);
        bytes.truncate(cut.min(bytes.len().saturating_sub(1)));
        // Must error, not panic or loop.
        prop_assert!(decode::<UpdateUpload>(&bytes).is_err());
    }

    #[test]
    fn corrupted_length_prefixes_never_allocate_wildly(pos in 0usize..32, byte in any::<u8>()) {
        let msg = UpdateUpload {
            client_id: 1,
            round: 2,
            weights: weights(1, 2, 7),
            num_samples: 10,
            train_loss: 0.5,
        };
        let mut bytes = encode(&msg);
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        // Either decodes to something or errors — no panic, no OOM.
        let _ = decode::<UpdateUpload>(&bytes);
    }

    #[test]
    fn fedavg_is_idempotent_on_identical_updates(n in 1usize..6, seed in 0u64..1000) {
        let w = weights(2, 3, seed);
        let updates: Vec<UpdateUpload> = (0..n)
            .map(|i| UpdateUpload {
                client_id: i as u64,
                round: 0,
                weights: w.clone(),
                num_samples: 5 + i,
                train_loss: 0.1,
            })
            .collect();
        let agg = fedavg(&updates).unwrap();
        for (a, b) in agg.iter().zip(w.iter()) {
            prop_assert!(a.w.approx_eq(&b.w, 1e-4));
            prop_assert!(a.b.approx_eq(&b.b, 1e-4));
        }
    }

    #[test]
    fn fedavg_stays_in_convex_hull(wa in -1.0f32..1.0, wb in -1.0f32..1.0, na in 1usize..50, nb in 1usize..50) {
        let mk = |v: f32| ModelWeights::new(vec![LayerWeights {
            w: Tensor::full(&[2], v),
            b: Tensor::full(&[1], v),
        }]);
        let updates = vec![
            UpdateUpload { client_id: 0, round: 0, weights: mk(wa), num_samples: na, train_loss: 0.0 },
            UpdateUpload { client_id: 1, round: 0, weights: mk(wb), num_samples: nb, train_loss: 0.0 },
        ];
        let agg = fedavg(&updates).unwrap();
        let v = agg.layer(0).unwrap().w.data()[0];
        let (lo, hi) = (wa.min(wb), wa.max(wb));
        prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5, "{v} outside [{lo}, {hi}]");
    }
}
