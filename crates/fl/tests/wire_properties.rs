//! Property-based tests for the FL wire protocol and aggregation.
//!
//! Every message the protocol speaks round-trips through the full path a
//! transport uses: encode → wrap in an [`Envelope`] → encode the envelope
//! (the TCP frame) → decode the envelope → open the payload.

use gradsec_fl::aggregate::fedavg;
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::message::{
    decode, encode, AttestationRequest, AttestationResponse, Envelope, ErrorReply, Hello, HelloAck,
    MessageKind, ModelDownload, UpdateUpload, Wire, ENVELOPE_MAGIC,
};
use gradsec_nn::model::{LayerWeights, ModelWeights};
use gradsec_tee::attestation::{sign_quote, Challenge, Measurement};
use gradsec_tee::cost::{ClientCycleCost, TimeBreakdown};
use gradsec_tee::ta::Uuid;
use gradsec_tee::tiop::{Frame, SecureChannel};
use gradsec_tensor::{init, Tensor};
use proptest::prelude::*;

fn weights(layers: usize, width: usize, seed: u64) -> ModelWeights {
    ModelWeights::new(
        (0..layers)
            .map(|i| LayerWeights {
                w: init::uniform(&[width, width], -1.0, 1.0, seed + i as u64),
                b: init::uniform(&[width], -1.0, 1.0, seed + 100 + i as u64),
            })
            .collect(),
    )
}

fn cost(client_id: u64, scale: f64, crossings: u64, peak: usize) -> ClientCycleCost {
    ClientCycleCost {
        client_id,
        time: TimeBreakdown {
            user_s: 2.0 * scale,
            kernel_s: 0.25 * scale,
            alloc_s: 4.5 * scale,
        },
        crossings,
        tee_peak_bytes: peak,
    }
}

/// Round-trips a message through the full transport path: message bytes →
/// envelope → envelope bytes (the TCP frame) → envelope → message.
fn through_envelope<T: Wire + PartialEq + std::fmt::Debug>(kind: MessageKind, msg: &T) -> T {
    let envelope = Envelope::pack(kind, msg);
    let framed = encode(&envelope);
    let back: Envelope = decode(&framed).expect("envelope frame decodes");
    assert_eq!(back, envelope, "envelope survived framing");
    back.open(kind).expect("payload opens as the packed kind")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tensor_wire_roundtrip(r in 1usize..5, c in 1usize..6, seed in 0u64..1000) {
        let t = init::uniform(&[r, c], -100.0, 100.0, seed);
        let back: Tensor = decode(&encode(&t)).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn download_wire_roundtrip(layers in 1usize..4, width in 1usize..5, round in 0u64..1000, prot in proptest::collection::vec(0usize..8, 0..4)) {
        let msg = ModelDownload {
            round,
            weights: weights(layers, width, round),
            plan: TrainingPlan::default(),
            protected_layers: prot,
        };
        let back = through_envelope(MessageKind::ModelDownload, &msg);
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn upload_wire_roundtrip(layers in 1usize..4, width in 1usize..5, id in 0u64..64, crossings in 0u64..1000, peak in 0usize..(8 << 20)) {
        let msg = UpdateUpload {
            client_id: id,
            round: 3,
            weights: weights(layers, width, id),
            num_samples: 10,
            train_loss: 0.5,
            cost: cost(id, (crossings % 7) as f64 * 0.5, crossings, peak),
        };
        let back = through_envelope(MessageKind::UpdateUpload, &msg);
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn attestation_wire_roundtrip(nonce in any::<[u8; 16]>(), with_quote in any::<bool>(), key in proptest::collection::vec(any::<u8>(), 1..32)) {
        let challenge = Challenge::new(nonce);
        let req = AttestationRequest { challenge };
        let back = through_envelope(MessageKind::AttestationRequest, &req);
        prop_assert_eq!(req, back);
        let quote = with_quote.then(|| {
            sign_quote(&key, Uuid::from_name("ta"), Measurement([7u8; 32]), &challenge)
        });
        let resp = AttestationResponse { quote };
        let back = through_envelope(MessageKind::AttestationResponse, &resp);
        prop_assert_eq!(resp, back);
    }

    #[test]
    fn handshake_wire_roundtrip(min in 0u16..100, span in 0u16..100, id in any::<u64>()) {
        let hello = Hello { min_version: min, max_version: min.saturating_add(span) };
        prop_assert_eq!(hello, through_envelope(MessageKind::Hello, &hello));
        let ack = HelloAck { version: min, client_id: id };
        prop_assert_eq!(ack, through_envelope(MessageKind::HelloAck, &ack));
    }

    #[test]
    fn error_reply_roundtrips_arbitrary_text(reason in "[ -~]{0,120}") {
        let msg = ErrorReply { reason };
        let back = through_envelope(MessageKind::Error, &msg);
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn plan_wire_roundtrip(rounds in 1u64..100, cpr in 1usize..32, bpc in 1usize..32, bs in 1usize..128, seed in any::<u64>()) {
        let plan = TrainingPlan {
            rounds,
            clients_per_round: cpr,
            batches_per_cycle: bpc,
            batch_size: bs,
            learning_rate: 0.125,
            seed,
        };
        let back: TrainingPlan = decode(&encode(&plan)).unwrap();
        prop_assert_eq!(plan, back);
    }

    #[test]
    fn sealed_frame_roundtrips_through_envelope(payload in proptest::collection::vec(any::<u8>(), 0..256), secret in proptest::collection::vec(any::<u8>(), 1..32)) {
        let (mut tx, mut rx) = SecureChannel::pair(&secret);
        let frame = tx.seal(&payload);
        let back: Frame = through_envelope(MessageKind::Sealed, &frame);
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(rx.open(&back).unwrap(), payload);
    }

    #[test]
    fn truncated_envelopes_never_panic(cut in 0usize..200) {
        let msg = UpdateUpload {
            client_id: 1,
            round: 2,
            weights: weights(2, 3, 7),
            num_samples: 10,
            train_loss: 0.5,
            cost: cost(1, 1.0, 12, 4096),
        };
        let mut bytes = encode(&Envelope::pack(MessageKind::UpdateUpload, &msg));
        bytes.truncate(cut.min(bytes.len().saturating_sub(1)));
        // Must error, not panic or loop.
        prop_assert!(decode::<Envelope>(&bytes).is_err());
    }

    #[test]
    fn corrupted_envelopes_never_allocate_wildly(pos in 0usize..48, byte in any::<u8>()) {
        let msg = UpdateUpload {
            client_id: 1,
            round: 2,
            weights: weights(1, 2, 7),
            num_samples: 10,
            train_loss: 0.5,
            cost: cost(1, 0.5, 3, 1024),
        };
        let mut bytes = encode(&Envelope::pack(MessageKind::UpdateUpload, &msg));
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        // Either decodes to something or errors — no panic, no OOM. A
        // decoded envelope may still hold a corrupt payload; opening it
        // must be equally safe.
        if let Ok(env) = decode::<Envelope>(&bytes) {
            let _ = env.open::<UpdateUpload>(MessageKind::UpdateUpload);
        }
    }

    #[test]
    fn wrong_magic_is_always_rejected(magic in any::<u16>()) {
        prop_assume!(magic != ENVELOPE_MAGIC);
        let mut bytes = encode(&Envelope::control(MessageKind::Goodbye));
        bytes[0..2].copy_from_slice(&magic.to_le_bytes());
        prop_assert!(decode::<Envelope>(&bytes).is_err());
    }

    #[test]
    fn fedavg_is_idempotent_on_identical_updates(n in 1usize..6, seed in 0u64..1000) {
        let w = weights(2, 3, seed);
        let updates: Vec<UpdateUpload> = (0..n)
            .map(|i| UpdateUpload {
                client_id: i as u64,
                round: 0,
                weights: w.clone(),
                num_samples: 5 + i,
                train_loss: 0.1,
                cost: cost(i as u64, 1.0, 2, 64),
            })
            .collect();
        let agg = fedavg(&updates).unwrap();
        for (a, b) in agg.iter().zip(w.iter()) {
            prop_assert!(a.w.approx_eq(&b.w, 1e-4));
            prop_assert!(a.b.approx_eq(&b.b, 1e-4));
        }
    }

    #[test]
    fn fedavg_stays_in_convex_hull(wa in -1.0f32..1.0, wb in -1.0f32..1.0, na in 1usize..50, nb in 1usize..50) {
        let mk = |v: f32| ModelWeights::new(vec![LayerWeights {
            w: Tensor::full(&[2], v),
            b: Tensor::full(&[1], v),
        }]);
        let updates = vec![
            UpdateUpload { client_id: 0, round: 0, weights: mk(wa), num_samples: na, train_loss: 0.0, cost: Default::default() },
            UpdateUpload { client_id: 1, round: 0, weights: mk(wb), num_samples: nb, train_loss: 0.0, cost: Default::default() },
        ];
        let agg = fedavg(&updates).unwrap();
        let v = agg.layer(0).unwrap().w.data()[0];
        let (lo, hi) = (wa.min(wb), wa.max(wb));
        prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5, "{v} outside [{lo}, {hi}]");
    }
}
