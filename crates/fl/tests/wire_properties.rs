//! Property-based tests for the FL wire protocol and aggregation.
//!
//! Every message the protocol speaks round-trips through the full path a
//! transport uses: encode → wrap in an [`Envelope`] → encode the envelope
//! (the TCP frame) → decode the envelope → open the payload.

use gradsec_fl::adversary::AdversaryPlan;
use gradsec_fl::aggregate::{fedavg, PartialAggregate};
use gradsec_fl::codec::{
    decode_weights, dense_wire_bytes, encode_weights, int8_error_bound, CodecKind,
};
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::faults::{FaultPlan, LatencyModel};
use gradsec_fl::message::{
    decode, encode, AttestationRequest, AttestationResponse, DatasetSpec, EncodedModelDownload,
    EncodedUpdateUpload, Envelope, ErrorReply, Hello, HelloAck, MessageKind, ModelDownload,
    ModelSpec, ScreenProbe, ShardConfig, ShardConfigAck, ShardHello, ShardHelloAck, ShardOutcome,
    ShardOutcomeKind, ShardRound, ShardRoundReply, ShardScreen, ShardScreenReply, UpdateUpload,
    Wire, ENVELOPE_MAGIC,
};
use gradsec_nn::model::{LayerWeights, ModelWeights};
use gradsec_tee::attestation::{sign_quote, Challenge, Measurement};
use gradsec_tee::cost::{ClientCycleCost, RoundLedger, TimeBreakdown, WireBill};
use gradsec_tee::ta::Uuid;
use gradsec_tee::tiop::{Frame, SecureChannel};
use gradsec_tensor::{init, Tensor};
use proptest::prelude::*;

fn weights(layers: usize, width: usize, seed: u64) -> ModelWeights {
    ModelWeights::new(
        (0..layers)
            .map(|i| LayerWeights {
                w: init::uniform(&[width, width], -1.0, 1.0, seed + i as u64),
                b: init::uniform(&[width], -1.0, 1.0, seed + 100 + i as u64),
            })
            .collect(),
    )
}

fn cost(client_id: u64, scale: f64, crossings: u64, peak: usize) -> ClientCycleCost {
    ClientCycleCost {
        client_id,
        time: TimeBreakdown {
            user_s: 2.0 * scale,
            kernel_s: 0.25 * scale,
            alloc_s: 4.5 * scale,
        },
        crossings,
        tee_peak_bytes: peak,
        wire: WireBill {
            download_encoded_bytes: peak as u64,
            download_raw_bytes: peak as u64 * 3,
            upload_encoded_bytes: crossings,
            upload_raw_bytes: crossings * 3,
        },
    }
}

/// An arbitrary codec from a primitive draw (the vendored proptest has
/// no combinators, so variants are selected by tag in the test body).
fn codec_from(tag: u8) -> CodecKind {
    match tag % 3 {
        0 => CodecKind::Identity,
        1 => CodecKind::Int8,
        _ => CodecKind::DeltaTopK,
    }
}

fn upload(id: u64, seed: u64) -> UpdateUpload {
    UpdateUpload {
        client_id: id,
        round: 1,
        weights: weights(2, 3, seed),
        num_samples: 4 + id as usize,
        train_loss: 0.25,
        cost: cost(id, 1.0, 3, 2048),
    }
}

/// An arbitrary-but-valid latency model from primitive draws (`a`, `b`
/// nonnegative): the vendored proptest has no combinators, so variants
/// are selected by tag in the test body.
fn latency_from(tag: u8, a: f64, b: f64) -> LatencyModel {
    match tag % 4 {
        0 => LatencyModel::None,
        1 => LatencyModel::Fixed(a),
        2 => LatencyModel::Uniform {
            min_s: a.min(b),
            max_s: a.max(b),
        },
        _ => LatencyModel::Exponential { mean_s: a + 0.01 },
    }
}

/// An arbitrary-but-valid fault plan exercising every encoded field
/// (validated on decode, so every knob stays in its legal range).
#[allow(clippy::too_many_arguments)]
fn fault_plan_from(
    seed: u64,
    lat: LatencyModel,
    dropout: f64,
    drop: f64,
    garble: f64,
    deadline: Option<f64>,
    spare: usize,
    crashes: &[(u64, u64)],
    overrides: &[(u64, u8, f64, f64)],
) -> FaultPlan {
    let mut plan = FaultPlan::seeded(seed)
        .latency(lat)
        .dropout(dropout)
        .drop_messages(drop)
        .garble_replies(garble)
        .spare(spare);
    if let Some(d) = deadline {
        plan = plan.deadline_s(d);
    }
    for &(client, round) in crashes {
        plan = plan.crash_at(client, round);
    }
    for &(client, tag, a, b) in overrides {
        plan = plan.client_latency(client, latency_from(tag, a, b));
    }
    plan
}

fn dataset_spec_from(tag: u8, len: u64, classes: u64, dim: u64, seed: u64) -> DatasetSpec {
    if tag.is_multiple_of(2) {
        DatasetSpec::Micro {
            len,
            classes,
            dim,
            seed,
        }
    } else {
        DatasetSpec::Cifar { len, classes, seed }
    }
}

fn model_spec_from(tag: u8, a: u64, b: u64, c: u64, seed: u64) -> ModelSpec {
    if tag.is_multiple_of(2) {
        ModelSpec::TinyMlp {
            inputs: a,
            hidden: b,
            outputs: c,
            seed,
        }
    } else {
        ModelSpec::LeNet5 { classes: c, seed }
    }
}

fn shard_config(
    dataset: DatasetSpec,
    model: ModelSpec,
    range: (u64, u64, u64),
    faults: Option<FaultPlan>,
) -> ShardConfig {
    ShardConfig {
        shard_index: 2,
        range_start: range.0,
        range_end: range.1,
        total_clients: range.2,
        dataset,
        model,
        init_weights: weights(2, 3, 11),
        plan: TrainingPlan::default(),
        backend: "reference".to_owned(),
        codec: "identity".to_owned(),
        workers: 4,
        measurement: Measurement([9u8; 32]),
        faults,
        partition: "iid".to_owned(),
        adversaries: None,
    }
}

/// An arbitrary-but-valid adversarial scenario from primitive draws
/// (fractions capped at 0.25 each so their sum stays within [0, 1];
/// knobs nonnegative and finite, as validation demands).
fn adversary_plan_from(
    seed: u64,
    fractions: (f64, f64, f64, f64),
    knobs: (f32, f32, f32),
) -> AdversaryPlan {
    AdversaryPlan::seeded(seed)
        .poisoners(fractions.0)
        .scalers(fractions.1)
        .free_riders(fractions.2)
        .colluders(fractions.3)
        .poison_strength(knobs.0)
        .poison_noise(knobs.1)
        .scale_boost(knobs.2)
}

/// Round-trips a message through the full transport path: message bytes →
/// envelope → envelope bytes (the TCP frame) → envelope → message.
fn through_envelope<T: Wire + PartialEq + std::fmt::Debug>(kind: MessageKind, msg: &T) -> T {
    let envelope = Envelope::pack(kind, msg);
    let framed = encode(&envelope);
    let back: Envelope = decode(&framed).expect("envelope frame decodes");
    assert_eq!(back, envelope, "envelope survived framing");
    back.open(kind).expect("payload opens as the packed kind")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tensor_wire_roundtrip(r in 1usize..5, c in 1usize..6, seed in 0u64..1000) {
        let t = init::uniform(&[r, c], -100.0, 100.0, seed);
        let back: Tensor = decode(&encode(&t)).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn download_wire_roundtrip(layers in 1usize..4, width in 1usize..5, round in 0u64..1000, prot in proptest::collection::vec(0usize..8, 0..4)) {
        let msg = ModelDownload {
            round,
            weights: weights(layers, width, round),
            plan: TrainingPlan::default(),
            protected_layers: prot,
        };
        let back = through_envelope(MessageKind::ModelDownload, &msg);
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn upload_wire_roundtrip(layers in 1usize..4, width in 1usize..5, id in 0u64..64, crossings in 0u64..1000, peak in 0usize..(8 << 20)) {
        let msg = UpdateUpload {
            client_id: id,
            round: 3,
            weights: weights(layers, width, id),
            num_samples: 10,
            train_loss: 0.5,
            cost: cost(id, (crossings % 7) as f64 * 0.5, crossings, peak),
        };
        let back = through_envelope(MessageKind::UpdateUpload, &msg);
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn attestation_wire_roundtrip(nonce in any::<[u8; 16]>(), with_quote in any::<bool>(), key in proptest::collection::vec(any::<u8>(), 1..32)) {
        let challenge = Challenge::new(nonce);
        let req = AttestationRequest { challenge };
        let back = through_envelope(MessageKind::AttestationRequest, &req);
        prop_assert_eq!(req, back);
        let quote = with_quote.then(|| {
            sign_quote(&key, Uuid::from_name("ta"), Measurement([7u8; 32]), &challenge)
        });
        let resp = AttestationResponse { quote };
        let back = through_envelope(MessageKind::AttestationResponse, &resp);
        prop_assert_eq!(resp, back);
    }

    #[test]
    fn handshake_wire_roundtrip(min in 0u16..100, span in 0u16..100, id in any::<u64>(), tag in any::<u8>()) {
        let hello = Hello { min_version: min, max_version: min.saturating_add(span), codec: codec_from(tag) };
        prop_assert_eq!(hello, through_envelope(MessageKind::Hello, &hello));
        let ack = HelloAck { version: min, client_id: id, codec: codec_from(tag) };
        prop_assert_eq!(ack, through_envelope(MessageKind::HelloAck, &ack));
    }

    #[test]
    fn error_reply_roundtrips_arbitrary_text(reason in "[ -~]{0,120}") {
        let msg = ErrorReply { reason };
        let back = through_envelope(MessageKind::Error, &msg);
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn plan_wire_roundtrip(rounds in 1u64..100, cpr in 1usize..32, bpc in 1usize..32, bs in 1usize..128, seed in any::<u64>()) {
        let plan = TrainingPlan {
            rounds,
            clients_per_round: cpr,
            batches_per_cycle: bpc,
            batch_size: bs,
            learning_rate: 0.125,
            seed,
        };
        let back: TrainingPlan = decode(&encode(&plan)).unwrap();
        prop_assert_eq!(plan, back);
    }

    #[test]
    fn sealed_frame_roundtrips_through_envelope(payload in proptest::collection::vec(any::<u8>(), 0..256), secret in proptest::collection::vec(any::<u8>(), 1..32)) {
        let (mut tx, mut rx) = SecureChannel::pair(&secret);
        let frame = tx.seal(&payload);
        let back: Frame = through_envelope(MessageKind::Sealed, &frame);
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(rx.open(&back).unwrap(), payload);
    }

    #[test]
    fn truncated_envelopes_never_panic(cut in 0usize..200) {
        let msg = UpdateUpload {
            client_id: 1,
            round: 2,
            weights: weights(2, 3, 7),
            num_samples: 10,
            train_loss: 0.5,
            cost: cost(1, 1.0, 12, 4096),
        };
        let mut bytes = encode(&Envelope::pack(MessageKind::UpdateUpload, &msg));
        bytes.truncate(cut.min(bytes.len().saturating_sub(1)));
        // Must error, not panic or loop.
        prop_assert!(decode::<Envelope>(&bytes).is_err());
    }

    #[test]
    fn corrupted_envelopes_never_allocate_wildly(pos in 0usize..48, byte in any::<u8>()) {
        let msg = UpdateUpload {
            client_id: 1,
            round: 2,
            weights: weights(1, 2, 7),
            num_samples: 10,
            train_loss: 0.5,
            cost: cost(1, 0.5, 3, 1024),
        };
        let mut bytes = encode(&Envelope::pack(MessageKind::UpdateUpload, &msg));
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        // Either decodes to something or errors — no panic, no OOM. A
        // decoded envelope may still hold a corrupt payload; opening it
        // must be equally safe.
        if let Ok(env) = decode::<Envelope>(&bytes) {
            let _ = env.open::<UpdateUpload>(MessageKind::UpdateUpload);
        }
    }

    #[test]
    fn wrong_magic_is_always_rejected(magic in any::<u16>()) {
        prop_assume!(magic != ENVELOPE_MAGIC);
        let mut bytes = encode(&Envelope::control(MessageKind::Goodbye));
        bytes[0..2].copy_from_slice(&magic.to_le_bytes());
        prop_assert!(decode::<Envelope>(&bytes).is_err());
    }

    #[test]
    fn fedavg_is_idempotent_on_identical_updates(n in 1usize..6, seed in 0u64..1000) {
        let w = weights(2, 3, seed);
        let updates: Vec<UpdateUpload> = (0..n)
            .map(|i| UpdateUpload {
                client_id: i as u64,
                round: 0,
                weights: w.clone(),
                num_samples: 5 + i,
                train_loss: 0.1,
                cost: cost(i as u64, 1.0, 2, 64),
            })
            .collect();
        let agg = fedavg(&updates).unwrap();
        for (a, b) in agg.iter().zip(w.iter()) {
            prop_assert!(a.w.approx_eq(&b.w, 1e-4));
            prop_assert!(a.b.approx_eq(&b.b, 1e-4));
        }
    }

    #[test]
    fn fedavg_stays_in_convex_hull(wa in -1.0f32..1.0, wb in -1.0f32..1.0, na in 1usize..50, nb in 1usize..50) {
        let mk = |v: f32| ModelWeights::new(vec![LayerWeights {
            w: Tensor::full(&[2], v),
            b: Tensor::full(&[1], v),
        }]);
        let updates = vec![
            UpdateUpload { client_id: 0, round: 0, weights: mk(wa), num_samples: na, train_loss: 0.0, cost: Default::default() },
            UpdateUpload { client_id: 1, round: 0, weights: mk(wb), num_samples: nb, train_loss: 0.0, cost: Default::default() },
        ];
        let agg = fedavg(&updates).unwrap();
        let v = agg.layer(0).unwrap().w.data()[0];
        let (lo, hi) = (wa.min(wb), wa.max(wb));
        prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5, "{v} outside [{lo}, {hi}]");
    }
}

// Shard-control plane (protocol v3): every message the distributed
// coordinator speaks round-trips through the full envelope path, and the
// usual hostile-bytes properties (truncation, garbling, validation)
// hold for the new payloads too.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shard_handshake_wire_roundtrip(min in 0u16..100, span in 0u16..100, pid in any::<u64>(), version in 0u16..100, index in 0u64..64) {
        let hello = ShardHello { min_version: min, max_version: min.saturating_add(span), pid };
        prop_assert_eq!(hello, through_envelope(MessageKind::ShardHello, &hello));
        let ack = ShardHelloAck { version, shard_index: index };
        prop_assert_eq!(ack, through_envelope(MessageKind::ShardHelloAck, &ack));
    }

    #[test]
    fn shard_config_wire_roundtrip(
        ds in (0u8..2, 1u64..2048, 1u64..16, 1u64..64, any::<u64>()),
        md in (0u8..2, 1u64..256, 1u64..32, 1u64..16, any::<u64>()),
        start in 0u64..50,
        len in 0u64..50,
        faulty in (any::<bool>(), any::<u64>(), 0u8..4, 0.0f64..10.0, 0.0f64..1.0),
        clients in 0u64..64,
    ) {
        let faults = faulty.0.then(|| {
            fault_plan_from(
                faulty.1,
                latency_from(faulty.2, faulty.3, faulty.3 * 0.5),
                faulty.4,
                faulty.4,
                faulty.4,
                Some(1.0 + faulty.3),
                2,
                &[(3, 1)],
                &[],
            )
        });
        let config = shard_config(
            dataset_spec_from(ds.0, ds.1, ds.2, ds.3, ds.4),
            model_spec_from(md.0, md.1, md.2, md.3, md.4),
            (start, start + len, start + len + 8),
            faults,
        );
        let back = through_envelope(MessageKind::ShardConfig, &config);
        prop_assert_eq!(config, back);
        let ack = ShardConfigAck { clients };
        prop_assert_eq!(ack, through_envelope(MessageKind::ShardConfigAck, &ack));
    }

    #[test]
    fn fault_plan_wire_roundtrip(
        seed in any::<u64>(),
        lat in (0u8..4, 0.0f64..10.0, 0.0f64..10.0),
        probs in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        deadline_on in any::<bool>(),
        deadline in 0.5f64..100.0,
        spare in 0usize..16,
        crashes in proptest::collection::vec((0u64..64, 0u64..10), 0..4),
        overrides in proptest::collection::vec((0u64..64, 0u8..4, 0.0f64..10.0, 0.0f64..10.0), 0..4),
    ) {
        let plan = fault_plan_from(
            seed,
            latency_from(lat.0, lat.1, lat.2),
            probs.0,
            probs.1,
            probs.2,
            deadline_on.then_some(deadline),
            spare,
            &crashes,
            &overrides,
        );
        let back: FaultPlan = decode(&encode(&plan)).unwrap();
        prop_assert_eq!(plan, back);
    }

    #[test]
    fn shard_config_decode_rejects_inverted_ranges(start in 1u64..100, shrink in 1u64..50) {
        // An inverted or fleet-overflowing range encodes fine (the
        // struct is plain data) but must never decode: the shard server
        // would index out of the global partition.
        let inverted = shard_config(
            DatasetSpec::Micro { len: 8, classes: 2, dim: 4, seed: 1 },
            ModelSpec::TinyMlp { inputs: 4, hidden: 2, outputs: 2, seed: 1 },
            (start, start - shrink.min(start), start + 8),
            None,
        );
        prop_assert!(decode::<ShardConfig>(&encode(&inverted)).is_err());
        let overflowing = shard_config(
            DatasetSpec::Micro { len: 8, classes: 2, dim: 4, seed: 1 },
            ModelSpec::TinyMlp { inputs: 4, hidden: 2, outputs: 2, seed: 1 },
            (start, start + shrink, start),
            None,
        );
        prop_assert!(decode::<ShardConfig>(&encode(&overflowing)).is_err());
    }

    #[test]
    fn shard_screen_wire_roundtrip(probes in proptest::collection::vec((0u64..512, any::<[u8; 16]>()), 0..8), with_quote in proptest::collection::vec(any::<bool>(), 0..8)) {
        let screen = ShardScreen {
            probes: probes
                .iter()
                .map(|&(local, nonce)| ScreenProbe { local, challenge: Challenge::new(nonce) })
                .collect(),
        };
        prop_assert_eq!(&screen, &through_envelope(MessageKind::ShardScreen, &screen));
        let reply = ShardScreenReply {
            evidence: with_quote
                .iter()
                .enumerate()
                .map(|(i, &q)| {
                    q.then(|| AttestationResponse {
                        quote: Some(sign_quote(
                            b"key",
                            Uuid::from_name("ta"),
                            Measurement([i as u8; 32]),
                            &Challenge::new([i as u8; 16]),
                        )),
                    })
                })
                .collect(),
        };
        prop_assert_eq!(&reply, &through_envelope(MessageKind::ShardScreenReply, &reply));
    }

    #[test]
    fn shard_round_wire_roundtrip(picks in proptest::collection::vec(0u64..512, 0..8), slot_base in 0u64..64, round in 0u64..100) {
        let msg = ShardRound {
            download: ModelDownload {
                round,
                weights: weights(2, 3, round),
                plan: TrainingPlan::default(),
                protected_layers: vec![0],
            },
            picks,
            slot_base,
        };
        prop_assert_eq!(&msg, &through_envelope(MessageKind::ShardRound, &msg));
    }

    #[test]
    fn shard_round_reply_wire_roundtrip(n_done in 0usize..5, n_others in 0usize..5, slot_base in 0usize..32, seed in any::<u64>()) {
        let mut partial = PartialAggregate::new();
        let mut ledger = RoundLedger::new();
        for j in 0..n_done {
            let id = (slot_base + j) as u64;
            partial.push(slot_base + j, upload(id, seed ^ id));
            ledger.record(cost(id, 1.0, 2, 512));
        }
        let others: Vec<ShardOutcome> = (0..n_others)
            .map(|j| {
                let slot = (slot_base + n_done + j) as u64;
                ledger.record(ClientCycleCost::unbilled(slot));
                ShardOutcome {
                    slot,
                    client: slot,
                    kind: if j % 2 == 0 {
                        ShardOutcomeKind::Straggler { elapsed_s: 12.5 + j as f64 }
                    } else {
                        ShardOutcomeKind::Failed { reason: format!("injected failure {j}") }
                    },
                }
            })
            .collect();
        let reply = ShardRoundReply { partial, others, ledger };
        prop_assert_eq!(&reply, &through_envelope(MessageKind::ShardRoundReply, &reply));
    }

    #[test]
    fn truncated_shard_messages_never_panic(cut in 0usize..400) {
        let config = shard_config(
            DatasetSpec::Cifar { len: 64, classes: 4, seed: 3 },
            ModelSpec::LeNet5 { classes: 4, seed: 5 },
            (0, 8, 16),
            Some(FaultPlan::seeded(9).dropout(0.1).deadline_s(10.0).spare(2)),
        );
        let mut bytes = encode(&Envelope::pack(MessageKind::ShardConfig, &config));
        bytes.truncate(cut.min(bytes.len().saturating_sub(1)));
        prop_assert!(decode::<Envelope>(&bytes).is_err());
    }

    #[test]
    fn garbled_shard_replies_never_panic(pos in 0usize..256, byte in any::<u8>()) {
        let mut partial = PartialAggregate::new();
        partial.push(3, upload(7, 1));
        let mut ledger = RoundLedger::new();
        ledger.record(cost(7, 1.0, 2, 512));
        let reply = ShardRoundReply { partial, others: vec![], ledger };
        let mut bytes = encode(&Envelope::pack(MessageKind::ShardRoundReply, &reply));
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        // Either decodes to something or errors — no panic, no OOM.
        if let Ok(env) = decode::<Envelope>(&bytes) {
            let _ = env.open::<ShardRoundReply>(MessageKind::ShardRoundReply);
        }
    }
}

// Update codecs (protocol v4): every codec's payloads round-trip through
// the full envelope path, hostile bytes never panic, and the lossy
// codecs honour their pinned error bounds for arbitrary weights.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encoded_download_wire_roundtrip(layers in 1usize..4, width in 1usize..6, round in 0u64..1000, tag in any::<u8>()) {
        let codec = codec_from(tag);
        let w = weights(layers, width, round);
        let base = weights(layers, width, round + 77);
        let reference = (codec == CodecKind::DeltaTopK).then_some((round, &base));
        let msg = EncodedModelDownload {
            round,
            weights: encode_weights(codec, round, &w, reference),
            plan: TrainingPlan::default(),
            protected_layers: vec![0],
        };
        let back = through_envelope(MessageKind::EncodedModelDownload, &msg);
        prop_assert_eq!(&msg, &back);
        // The framed encoding decodes back to same-shaped weights.
        let decoded = decode_weights(
            &back.weights,
            (codec == CodecKind::DeltaTopK).then_some(&base),
        ).unwrap();
        prop_assert_eq!(decoded.num_layers(), w.num_layers());
    }

    #[test]
    fn encoded_upload_wire_roundtrip(layers in 1usize..4, width in 1usize..6, id in 0u64..64, tag in any::<u8>()) {
        let codec = codec_from(tag);
        let w = weights(layers, width, id + 5);
        let base = weights(layers, width, id + 55);
        let reference = (codec == CodecKind::DeltaTopK).then_some((id, &base));
        let msg = EncodedUpdateUpload {
            client_id: id,
            round: 3,
            weights: encode_weights(codec, id, &w, reference),
            num_samples: 10,
            train_loss: 0.5,
            cost: cost(id, 1.0, 3, 2048),
        };
        let back = through_envelope(MessageKind::EncodedUpdateUpload, &msg);
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn identity_codec_is_bit_exact_for_arbitrary_weights(layers in 1usize..4, width in 1usize..6, seed in any::<u64>()) {
        let w = weights(layers, width, seed);
        let enc = encode_weights(CodecKind::Identity, 0, &w, None);
        let back = decode_weights(&enc, None).unwrap();
        prop_assert_eq!(w, back);
    }

    #[test]
    fn int8_codec_stays_within_its_pinned_error_bound(layers in 1usize..4, width in 1usize..6, seed in any::<u64>()) {
        let w = weights(layers, width, seed);
        let bound = int8_error_bound(&w);
        let enc = encode_weights(CodecKind::Int8, 0, &w, None);
        let back = decode_weights(&enc, None).unwrap();
        for (a, b) in w.iter().zip(back.iter()) {
            for (x, y) in a.w.data().iter().zip(b.w.data().iter()) {
                prop_assert!((x - y).abs() <= bound, "|{x} - {y}| > {bound}");
            }
            for (x, y) in a.b.data().iter().zip(b.b.data().iter()) {
                prop_assert!((x - y).abs() <= bound, "|{x} - {y}| > {bound}");
            }
        }
    }

    #[test]
    fn delta_topk_error_never_exceeds_the_dropped_delta(layers in 1usize..3, width in 1usize..6, seed in any::<u64>()) {
        // Reconstruction is `base + kept deltas`: a coordinate is either
        // restored to (float) x or left at base, so its error is bounded
        // by the delta magnitude itself.
        let w = weights(layers, width, seed);
        let base = weights(layers, width, seed ^ 0xABCD);
        let enc = encode_weights(CodecKind::DeltaTopK, 7, &w, Some((7, &base)));
        let back = decode_weights(&enc, Some(&base)).unwrap();
        for ((t, b), r) in w.iter().zip(base.iter()).zip(back.iter()) {
            for ((x, y), z) in t.w.data().iter().zip(b.w.data().iter()).zip(r.w.data().iter()) {
                let slack = (x - y).abs() + 1e-4 * (x.abs() + y.abs() + 1.0);
                prop_assert!((z - x).abs() <= slack, "|{z} - {x}| > {slack}");
            }
            for ((x, y), z) in t.b.data().iter().zip(b.b.data().iter()).zip(r.b.data().iter()) {
                let slack = (x - y).abs() + 1e-4 * (x.abs() + y.abs() + 1.0);
                prop_assert!((z - x).abs() <= slack, "|{z} - {x}| > {slack}");
            }
        }
    }

    #[test]
    fn lossy_codecs_never_grow_the_payload(layers in 1usize..4, width in 2usize..6, seed in any::<u64>(), tag in any::<u8>()) {
        let codec = codec_from(tag);
        let w = weights(layers, width, seed);
        let base = weights(layers, width, seed + 1);
        let reference = (codec == CodecKind::DeltaTopK).then_some((0, &base));
        let enc = encode_weights(codec, 0, &w, reference);
        // The envelope adds a bounded header over the raw dense bytes;
        // no codec may blow past that.
        prop_assert!(enc.wire_bytes() <= dense_wire_bytes(&w) + 64);
    }

    #[test]
    fn truncated_encoded_messages_never_panic(cut in 0usize..300, tag in any::<u8>()) {
        let codec = codec_from(tag);
        let w = weights(2, 3, 7);
        let base = weights(2, 3, 8);
        let reference = (codec == CodecKind::DeltaTopK).then_some((1, &base));
        let msg = EncodedModelDownload {
            round: 2,
            weights: encode_weights(codec, 1, &w, reference),
            plan: TrainingPlan::default(),
            protected_layers: vec![1],
        };
        let mut bytes = encode(&Envelope::pack(MessageKind::EncodedModelDownload, &msg));
        bytes.truncate(cut.min(bytes.len().saturating_sub(1)));
        prop_assert!(decode::<Envelope>(&bytes).is_err());
    }

    #[test]
    fn garbled_encoded_messages_never_panic(pos in 0usize..256, byte in any::<u8>(), tag in any::<u8>()) {
        let codec = codec_from(tag);
        let w = weights(2, 3, 7);
        let base = weights(2, 3, 8);
        let reference = (codec == CodecKind::DeltaTopK).then_some((1, &base));
        let msg = EncodedUpdateUpload {
            client_id: 1,
            round: 2,
            weights: encode_weights(codec, 1, &w, reference),
            num_samples: 10,
            train_loss: 0.5,
            cost: cost(1, 1.0, 12, 4096),
        };
        let mut bytes = encode(&Envelope::pack(MessageKind::EncodedUpdateUpload, &msg));
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        // Either decodes to something or errors — no panic, no OOM. A
        // decoded envelope may hold a corrupt payload; opening it, and
        // decoding whatever weights it claims to carry, must be equally
        // safe.
        if let Ok(env) = decode::<Envelope>(&bytes) {
            if let Ok(up) = env.open::<EncodedUpdateUpload>(MessageKind::EncodedUpdateUpload) {
                let _ = decode_weights(&up.weights, Some(&base));
            }
        }
    }
}

// Adversarial scenario plane (protocol v5): the scenario plan riding on
// the shard config round-trips through the full envelope path, invalid
// scenarios never decode, and hostile bytes never panic.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adversary_plan_wire_roundtrip(
        seed in any::<u64>(),
        fractions in (0.0f64..0.25, 0.0f64..0.25, 0.0f64..0.25, 0.0f64..0.25),
        knobs in (0.0f32..10.0, 0.0f32..1.0, 0.0f32..100.0),
    ) {
        let plan = adversary_plan_from(seed, fractions, knobs);
        plan.validate().unwrap();
        let back: AdversaryPlan = decode(&encode(&plan)).unwrap();
        prop_assert_eq!(plan, back);
    }

    #[test]
    fn adversarial_shard_config_wire_roundtrip(
        seed in any::<u64>(),
        fractions in (0.0f64..0.25, 0.0f64..0.25, 0.0f64..0.25, 0.0f64..0.25),
        by_label in any::<bool>(),
        hostile in any::<bool>(),
    ) {
        let mut config = shard_config(
            DatasetSpec::Micro { len: 32, classes: 4, dim: 4, seed: 1 },
            ModelSpec::TinyMlp { inputs: 4, hidden: 2, outputs: 4, seed: 1 },
            (0, 8, 16),
            None,
        );
        config.partition = if by_label { "by-label" } else { "iid" }.to_owned();
        config.adversaries =
            hostile.then(|| adversary_plan_from(seed, fractions, (1.0, 0.1, 8.0)));
        let back = through_envelope(MessageKind::ShardConfig, &config);
        prop_assert_eq!(config, back);
    }

    #[test]
    fn invalid_scenarios_never_decode(excess in 1.0f64..10.0) {
        // Fractions summing past 1 encode fine (plain data) but must be
        // rejected on decode — a shard server must never instantiate an
        // impossible fleet mix.
        let overfull = AdversaryPlan::seeded(1).poisoners(excess.min(1.0)).scalers(0.5);
        prop_assert!(decode::<AdversaryPlan>(&encode(&overfull)).is_err());
        let mut config = shard_config(
            DatasetSpec::Micro { len: 8, classes: 2, dim: 4, seed: 1 },
            ModelSpec::TinyMlp { inputs: 4, hidden: 2, outputs: 2, seed: 1 },
            (0, 4, 8),
            None,
        );
        config.partition = "bogus".to_owned();
        prop_assert!(decode::<ShardConfig>(&encode(&config)).is_err());
    }

    #[test]
    fn truncated_adversarial_configs_never_panic(cut in 0usize..400) {
        let mut config = shard_config(
            DatasetSpec::Cifar { len: 64, classes: 4, seed: 3 },
            ModelSpec::LeNet5 { classes: 4, seed: 5 },
            (0, 8, 16),
            Some(FaultPlan::seeded(9).dropout(0.1)),
        );
        config.partition = "by-label".to_owned();
        config.adversaries =
            Some(adversary_plan_from(7, (0.2, 0.1, 0.1, 0.1), (1.0, 0.1, 8.0)));
        let mut bytes = encode(&Envelope::pack(MessageKind::ShardConfig, &config));
        bytes.truncate(cut.min(bytes.len().saturating_sub(1)));
        prop_assert!(decode::<Envelope>(&bytes).is_err());
    }

    #[test]
    fn garbled_adversarial_configs_never_panic(pos in 0usize..300, byte in any::<u8>()) {
        let mut config = shard_config(
            DatasetSpec::Micro { len: 16, classes: 2, dim: 4, seed: 1 },
            ModelSpec::TinyMlp { inputs: 4, hidden: 2, outputs: 2, seed: 1 },
            (0, 4, 8),
            None,
        );
        config.adversaries =
            Some(adversary_plan_from(3, (0.25, 0.0, 0.25, 0.0), (2.0, 0.05, 4.0)));
        let mut bytes = encode(&Envelope::pack(MessageKind::ShardConfig, &config));
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        // Either decodes to something or errors — no panic, no OOM.
        if let Ok(env) = decode::<Envelope>(&bytes) {
            let _ = env.open::<ShardConfig>(MessageKind::ShardConfig);
        }
    }
}
