//! Activation functions `f_l` and their derivatives `f'_l`.
//!
//! The backpropagation formulas of the paper (eqs. 3–4) require each layer
//! to evaluate `f'_l(Z_l)` during the backward pass; every variant here is
//! therefore paired with its exact derivative.

use serde::{Deserialize, Serialize};

use gradsec_tensor::Tensor;

/// An elementwise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Identity: `f(z) = z` (used for logits feeding the softmax loss).
    #[default]
    Linear,
    /// Rectified linear unit: `f(z) = max(0, z)`.
    Relu,
    /// Logistic sigmoid: `f(z) = 1/(1+e^{−z})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply(self, z: f32) -> f32 {
        match self {
            Activation::Linear => z,
            Activation::Relu => z.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-z).exp()),
            Activation::Tanh => z.tanh(),
        }
    }

    /// Evaluates the derivative `f'(z)` at a pre-activation value `z`.
    pub fn derivative(self, z: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-z).exp());
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
        }
    }

    /// Applies the activation to every element of a tensor.
    pub fn apply_tensor(self, z: &Tensor) -> Tensor {
        z.map(|x| self.apply(x))
    }

    /// Evaluates the derivative elementwise over a tensor of
    /// pre-activations.
    pub fn derivative_tensor(self, z: &Tensor) -> Tensor {
        z.map(|x| self.derivative(x))
    }

    /// The tensor-backend fused-kernel counterpart of this activation.
    ///
    /// The [`FusedActivation`](gradsec_tensor::backend::FusedActivation)
    /// formulas are kept textually identical to [`Activation::apply`],
    /// so a fused forward pass is bit-identical to `forward` +
    /// `apply_tensor` on backends that replay the unfused op order.
    pub fn fused(self) -> gradsec_tensor::backend::FusedActivation {
        use gradsec_tensor::backend::FusedActivation;
        match self {
            Activation::Linear => FusedActivation::Identity,
            Activation::Relu => FusedActivation::Relu,
            Activation::Sigmoid => FusedActivation::Sigmoid,
            Activation::Tanh => FusedActivation::Tanh,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Linear => "linear",
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 4] = [
        Activation::Linear,
        Activation::Relu,
        Activation::Sigmoid,
        Activation::Tanh,
    ];

    #[test]
    fn known_values() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Linear.apply(-3.5), -3.5);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-6);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in ACTS {
            for &z in &[-2.0f32, -0.5, 0.3, 1.7] {
                let num = (act.apply(z + eps) - act.apply(z - eps)) / (2.0 * eps);
                let ana = act.derivative(z);
                assert!(
                    (num - ana).abs() < 1e-2,
                    "{act}: f'({z}) numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_is_a_step() {
        assert_eq!(Activation::Relu.derivative(-0.1), 0.0);
        assert_eq!(Activation::Relu.derivative(0.1), 1.0);
    }

    #[test]
    fn tensor_versions_agree_with_scalar() {
        let z = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        for act in ACTS {
            let a = act.apply_tensor(&z);
            let d = act.derivative_tensor(&z);
            for i in 0..3 {
                assert_eq!(a.data()[i], act.apply(z.data()[i]));
                assert_eq!(d.data()[i], act.derivative(z.data()[i]));
            }
        }
    }

    #[test]
    fn fused_counterparts_agree_bitwise_with_scalar_apply() {
        for act in ACTS {
            let fused = act.fused();
            for &z in &[-50.0f32, -2.0, -0.5, 0.0, 0.3, 1.7, 50.0] {
                assert_eq!(
                    fused.apply(z).to_bits(),
                    act.apply(z).to_bits(),
                    "{act}: fused kernel formula drifted at z={z}"
                );
            }
        }
    }

    #[test]
    fn sigmoid_outputs_in_unit_interval() {
        for &z in &[-50.0f32, -1.0, 0.0, 1.0, 50.0] {
            let s = Activation::Sigmoid.apply(z);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
