use std::fmt;

use gradsec_tensor::TensorError;

/// Errors produced while building or training a network.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape mismatch etc.).
    Tensor(TensorError),
    /// `backward` was called before `forward` populated the layer caches.
    BackwardBeforeForward {
        /// Index of the offending layer within its model.
        layer: usize,
    },
    /// The model has no layers.
    EmptyModel,
    /// Input batch does not match the model's expected input shape.
    BadInput {
        /// Expected per-sample shape.
        expected: Vec<usize>,
        /// Provided tensor shape.
        actual: Vec<usize>,
    },
    /// Two weight sets cannot be combined (different architectures).
    IncompatibleWeights {
        /// Human-readable reason.
        reason: String,
    },
    /// A layer index is out of range.
    NoSuchLayer {
        /// The requested index.
        index: usize,
        /// Number of layers in the model.
        len: usize,
    },
    /// An optimizer/configuration parameter is invalid.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::EmptyModel => write!(f, "model has no layers"),
            NnError::BadInput { expected, actual } => {
                write!(
                    f,
                    "bad input: expected per-sample {expected:?}, got {actual:?}"
                )
            }
            NnError::IncompatibleWeights { reason } => {
                write!(f, "incompatible weights: {reason}")
            }
            NnError::NoSuchLayer { index, len } => {
                write!(f, "no such layer {index} (model has {len})")
            }
            NnError::BadConfig { reason } => write!(f, "bad config: {reason}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::Tensor(TensorError::ReshapeMismatch { from: 1, to: 2 });
        assert!(e.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = NnError::EmptyModel;
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
