//! Gradient snapshots and the *Flaw 1* weight-diff reconstruction.
//!
//! A [`GradientSnapshot`] is the per-layer `(dW_l, db_l)` bundle an FL
//! client produces each cycle — the exact object the paper's client-side
//! attacker tries to observe, and the payload uploaded to the FL server.

use serde::{Deserialize, Serialize};

use gradsec_tensor::Tensor;

use crate::model::ModelWeights;
use crate::{NnError, Result};

/// Gradients of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerGradient {
    /// Index of the layer within its model (0-based; the paper's `l−1`).
    pub layer: usize,
    /// Weight gradient `dW_l`.
    pub dw: Tensor,
    /// Bias gradient `db_l`.
    pub db: Tensor,
}

impl LayerGradient {
    /// Total number of gradient scalars in this layer.
    pub fn len(&self) -> usize {
        self.dw.numel() + self.db.numel()
    }

    /// `true` when the layer holds no gradient scalars.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens `dW ‖ db` into one vector.
    pub fn to_flat(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.len());
        v.extend_from_slice(self.dw.data());
        v.extend_from_slice(self.db.data());
        v
    }
}

/// Per-layer gradients for a whole model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GradientSnapshot {
    layers: Vec<LayerGradient>,
}

impl GradientSnapshot {
    /// Builds a snapshot from per-layer gradients (must be in layer order).
    pub fn new(layers: Vec<LayerGradient>) -> Self {
        GradientSnapshot { layers }
    }

    /// Iterates over the per-layer gradients.
    pub fn iter(&self) -> impl Iterator<Item = &LayerGradient> {
        self.layers.iter()
    }

    /// Number of layers captured.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The gradients of layer `index`, if captured.
    pub fn layer(&self, index: usize) -> Option<&LayerGradient> {
        self.layers.iter().find(|g| g.layer == index)
    }

    /// Total number of gradient scalars across all layers.
    pub fn len(&self) -> usize {
        self.layers.iter().map(LayerGradient::len).sum()
    }

    /// `true` when no gradients are captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens all layers (in order) into a single feature vector — the
    /// row format of the attacker's `D_grad` dataset.
    pub fn to_flat(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.len());
        for g in &self.layers {
            v.extend_from_slice(g.dw.data());
            v.extend_from_slice(g.db.data());
        }
        v
    }

    /// Scales every gradient by `s` in place (FedAvg weighting).
    pub fn scale(&mut self, s: f32) {
        for g in &mut self.layers {
            g.dw.map_in_place(|x| x * s);
            g.db.map_in_place(|x| x * s);
        }
    }

    /// Accumulates `other` into `self` (FedAvg summation).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IncompatibleWeights`] when the snapshots cover
    /// different architectures.
    pub fn accumulate(&mut self, other: &GradientSnapshot) -> Result<()> {
        if self.layers.len() != other.layers.len() {
            return Err(NnError::IncompatibleWeights {
                reason: format!(
                    "snapshot layer counts differ: {} vs {}",
                    self.layers.len(),
                    other.layers.len()
                ),
            });
        }
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            if a.dw.dims() != b.dw.dims() || a.db.dims() != b.db.dims() {
                return Err(NnError::IncompatibleWeights {
                    reason: format!("layer {} gradient shapes differ", a.layer),
                });
            }
            for (x, &y) in a.dw.data_mut().iter_mut().zip(b.dw.data()) {
                *x += y;
            }
            for (x, &y) in a.db.data_mut().iter_mut().zip(b.db.data()) {
                *x += y;
            }
        }
        Ok(())
    }

    /// Euclidean distance between two snapshots over all scalars — the
    /// DRIA gradient-matching objective compares snapshots this way.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IncompatibleWeights`] on architecture mismatch.
    pub fn distance(&self, other: &GradientSnapshot) -> Result<f32> {
        if self.layers.len() != other.layers.len() {
            return Err(NnError::IncompatibleWeights {
                reason: "snapshot layer counts differ".to_owned(),
            });
        }
        let mut acc = 0.0f32;
        for (a, b) in self.layers.iter().zip(&other.layers) {
            for (&x, &y) in a.dw.data().iter().zip(b.dw.data()) {
                acc += (x - y) * (x - y);
            }
            for (&x, &y) in a.db.data().iter().zip(b.db.data()) {
                acc += (x - y) * (x - y);
            }
        }
        Ok(acc.sqrt())
    }

    /// Reconstructs the gradients from two consecutive weight states and
    /// the learning rate — the paper's **Flaw 1**:
    /// `dW_l = (W^t_l − W^{t+1}_l)/λ` (equation 2).
    ///
    /// This is what a normal-world attacker computes when a layer's weights
    /// are *not* protected by the enclave; the `gradsec-core` leakage model
    /// calls it to decide what leaks under each protection policy.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IncompatibleWeights`] when the two states differ
    /// in architecture, or [`NnError::BadConfig`] for a non-positive `λ`.
    pub fn from_weight_diff(
        before: &ModelWeights,
        after: &ModelWeights,
        lr: f32,
    ) -> Result<GradientSnapshot> {
        if lr <= 0.0 {
            return Err(NnError::BadConfig {
                reason: format!("learning rate must be positive, got {lr}"),
            });
        }
        if before.num_layers() != after.num_layers() {
            return Err(NnError::IncompatibleWeights {
                reason: "weight states have different layer counts".to_owned(),
            });
        }
        let mut layers = Vec::with_capacity(before.num_layers());
        for (i, (b, a)) in before.iter().zip(after.iter()).enumerate() {
            if b.w.dims() != a.w.dims() || b.b.dims() != a.b.dims() {
                return Err(NnError::IncompatibleWeights {
                    reason: format!("layer {i} weight shapes differ"),
                });
            }
            let dw = b.w.zip_with(&a.w, |wb, wa| (wb - wa) / lr)?;
            let db = b.b.zip_with(&a.b, |bb, ba| (bb - ba) / lr)?;
            layers.push(LayerGradient { layer: i, dw, db });
        }
        Ok(GradientSnapshot { layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LayerWeights, ModelWeights};

    fn snap(vals: &[f32]) -> GradientSnapshot {
        GradientSnapshot::new(vec![LayerGradient {
            layer: 0,
            dw: Tensor::from_vec(vals.to_vec(), &[vals.len()]).unwrap(),
            db: Tensor::zeros(&[1]),
        }])
    }

    #[test]
    fn flatten_orders_dw_then_db() {
        let g = GradientSnapshot::new(vec![LayerGradient {
            layer: 0,
            dw: Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap(),
            db: Tensor::from_vec(vec![3.0], &[1]).unwrap(),
        }]);
        assert_eq!(g.to_flat(), vec![1.0, 2.0, 3.0]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn scale_and_accumulate() {
        let mut a = snap(&[1.0, 2.0]);
        let b = snap(&[10.0, 20.0]);
        a.scale(0.5);
        a.accumulate(&b).unwrap();
        assert_eq!(a.layer(0).unwrap().dw.data(), &[10.5, 21.0]);
    }

    #[test]
    fn accumulate_rejects_mismatch() {
        let mut a = snap(&[1.0]);
        let b = snap(&[1.0, 2.0]);
        assert!(a.accumulate(&b).is_err());
        let c = GradientSnapshot::default();
        assert!(a.accumulate(&c).is_err());
    }

    #[test]
    fn distance_is_euclidean() {
        let a = snap(&[0.0, 0.0]);
        let b = snap(&[3.0, 4.0]);
        assert!((a.distance(&b).unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn weight_diff_recovers_sgd_gradient() {
        // Simulate one SGD step and reconstruct the gradient via Flaw 1.
        let lr = 0.1f32;
        let w0 = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let b0 = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        let dw = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        let db = Tensor::from_vec(vec![-1.0], &[1]).unwrap();
        let w1 = w0.zip_with(&dw, |w, g| w - lr * g).unwrap();
        let b1 = b0.zip_with(&db, |b, g| b - lr * g).unwrap();
        let before = ModelWeights::new(vec![LayerWeights { w: w0, b: b0 }]);
        let after = ModelWeights::new(vec![LayerWeights { w: w1, b: b1 }]);
        let leaked = GradientSnapshot::from_weight_diff(&before, &after, lr).unwrap();
        assert!(leaked.layer(0).unwrap().dw.approx_eq(&dw, 1e-5));
        assert!(leaked.layer(0).unwrap().db.approx_eq(&db, 1e-5));
    }

    #[test]
    fn weight_diff_validates_inputs() {
        let w = ModelWeights::new(vec![LayerWeights {
            w: Tensor::zeros(&[2]),
            b: Tensor::zeros(&[1]),
        }]);
        let other = ModelWeights::new(vec![]);
        assert!(GradientSnapshot::from_weight_diff(&w, &other, 0.1).is_err());
        assert!(GradientSnapshot::from_weight_diff(&w, &w, 0.0).is_err());
        assert!(GradientSnapshot::from_weight_diff(&w, &w, -1.0).is_err());
    }
}
