//! 2-D convolutional layer, optionally fused with `MP2` max pooling.

use gradsec_tensor::ops::conv::{conv2d_backward_with, conv2d_forward_fused_with, Conv2dGeometry};
use gradsec_tensor::ops::elementwise::hadamard_with;
use gradsec_tensor::ops::pool::{maxpool_backward_with, maxpool_forward_with, PoolGeometry};
use gradsec_tensor::{init, BackendKind, Tensor};

use crate::activation::Activation;
use crate::layer::{Layer, LayerKind};
use crate::{NnError, Result};

/// A convolutional layer `Z = W ⊛ A + b`, followed by an activation and an
/// optional fused 2×2/2 max pool (the paper's `Conv2D+MP2` rows in Table 4).
///
/// Weights are stored as an `(F, C·K·K)` matrix, biases as `(F)`.
///
/// # Example
///
/// ```
/// use gradsec_nn::layer::{Conv2d, Layer};
/// use gradsec_nn::activation::Activation;
/// use gradsec_tensor::Tensor;
///
/// # fn main() -> Result<(), gradsec_nn::NnError> {
/// // LeNet-5 L1: 32x32x3 -> 16x16x12 (Table 4).
/// let mut l1 = Conv2d::new(3, 32, 32, 12, 5, 2, 2, Activation::Relu, false, 1)?;
/// let x = Tensor::zeros(&[2, 3, 32, 32]);
/// let y = l1.forward(&x)?;
/// assert_eq!(y.dims(), &[2, 12, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    geo: Conv2dGeometry,
    pool: Option<PoolGeometry>,
    act: Activation,
    backend: BackendKind,
    weights: Tensor,
    bias: Tensor,
    dw: Option<Tensor>,
    db: Option<Tensor>,
    cached_input: Option<Tensor>,
    cached_preact: Option<Tensor>,
    cached_argmax: Option<Vec<u32>>,
}

impl Conv2d {
    /// Builds a convolutional layer with He-normal weight initialisation.
    ///
    /// `maxpool` fuses a 2×2/2 max pool after the activation.
    ///
    /// # Errors
    ///
    /// Returns geometry errors when the kernel/stride/pad combination is
    /// impossible for the declared input size.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        act: Activation,
        maxpool: bool,
        seed: u64,
    ) -> Result<Self> {
        let geo = Conv2dGeometry::new(in_channels, in_h, in_w, filters, kernel, stride, pad)?;
        let pool = if maxpool {
            Some(PoolGeometry::mp2(filters, geo.out_h, geo.out_w)?)
        } else {
            None
        };
        let fan_in = in_channels * kernel * kernel;
        let weights = init::he_normal(&[filters, fan_in], fan_in, seed);
        let bias = Tensor::zeros(&[filters]);
        Ok(Conv2d {
            geo,
            pool,
            act,
            backend: BackendKind::default(),
            weights,
            bias,
            dw: None,
            db: None,
            cached_input: None,
            cached_preact: None,
            cached_argmax: None,
        })
    }

    /// The convolution geometry (useful for chaining layer shapes).
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    /// Per-sample output spatial dims after the optional pool: `(C, H, W)`.
    pub fn output_dims(&self) -> (usize, usize, usize) {
        match &self.pool {
            Some(p) => (self.geo.out_channels, p.out_h, p.out_w),
            None => (self.geo.out_channels, self.geo.out_h, self.geo.out_w),
        }
    }
}

impl Layer for Conv2d {
    fn kind(&self) -> LayerKind {
        LayerKind::Conv2d {
            filters: self.geo.out_channels,
            kernel: self.geo.kernel,
            stride: self.geo.stride,
            pad: self.geo.pad,
            maxpool: self.pool.is_some(),
        }
    }

    fn backend(&self) -> BackendKind {
        self.backend
    }

    fn set_backend(&mut self, backend: BackendKind) {
        self.backend = backend;
    }

    fn activation(&self) -> Activation {
        self.act
    }

    fn input_elems(&self) -> usize {
        self.geo.in_len()
    }

    fn output_elems(&self) -> usize {
        let (c, h, w) = self.output_dims();
        c * h * w
    }

    fn preact_elems(&self) -> usize {
        self.geo.out_len()
    }

    fn param_count(&self) -> usize {
        self.weights.numel() + self.bias.numel()
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        // One fused kernel call computes Z and A = f(Z) together: the
        // Reference/Blocked defaults replay the historical unfused op
        // order bit-for-bit, while Tiled applies the activation inside
        // its GEMM writeback instead of re-walking the output.
        let (z, a) = conv2d_forward_fused_with(
            input,
            &self.weights,
            &self.bias,
            &self.geo,
            self.act.fused(),
            self.backend,
        )?;
        self.cached_input = Some(input.clone());
        self.cached_preact = Some(z);
        match &self.pool {
            Some(p) => {
                let (pooled, argmax) = maxpool_forward_with(&a, p, self.backend)?;
                self.cached_argmax = Some(argmax);
                Ok(pooled)
            }
            None => {
                self.cached_argmax = None;
                Ok(a)
            }
        }
    }

    fn backward(&mut self, delta_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: 0 })?;
        let z = self
            .cached_preact
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: 0 })?;
        // Un-pool the upstream error first, if a pool is fused.
        let delta_act = match &self.pool {
            Some(p) => {
                let argmax = self
                    .cached_argmax
                    .as_ref()
                    .ok_or(NnError::BackwardBeforeForward { layer: 0 })?;
                maxpool_backward_with(delta_out, argmax, p, self.backend)?
            }
            None => delta_out.clone(),
        };
        // δ_l = (unpooled error) ∗ f'(Z_l)  — the Hadamard term of eq. (4).
        let fprime = self.act.derivative_tensor(z);
        let delta_z = hadamard_with(&delta_act, &fprime, self.backend)?;
        let (dw, db, dinput) =
            conv2d_backward_with(input, &self.weights, &delta_z, &self.geo, self.backend)?;
        self.dw = Some(dw);
        self.db = Some(db);
        Ok(dinput)
    }

    fn weights(&self) -> (&Tensor, &Tensor) {
        (&self.weights, &self.bias)
    }

    fn weights_mut(&mut self) -> (&mut Tensor, &mut Tensor) {
        (&mut self.weights, &mut self.bias)
    }

    fn grads(&self) -> Option<(&Tensor, &Tensor)> {
        match (&self.dw, &self.db) {
            (Some(dw), Some(db)) => Some((dw, db)),
            _ => None,
        }
    }

    fn zero_grads(&mut self) {
        self.dw = None;
        self.db = None;
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
        self.cached_preact = None;
        self.cached_argmax = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_tensor::init;

    fn small_layer(maxpool: bool) -> Conv2d {
        Conv2d::new(2, 6, 6, 3, 3, 1, 1, Activation::Relu, maxpool, 7).unwrap()
    }

    #[test]
    fn forward_shapes() {
        let mut plain = small_layer(false);
        let x = init::uniform(&[4, 2, 6, 6], -1.0, 1.0, 1);
        assert_eq!(plain.forward(&x).unwrap().dims(), &[4, 3, 6, 6]);
        let mut pooled = small_layer(true);
        assert_eq!(pooled.forward(&x).unwrap().dims(), &[4, 3, 3, 3]);
    }

    #[test]
    fn footprints() {
        let l = small_layer(true);
        assert_eq!(l.input_elems(), 2 * 6 * 6);
        assert_eq!(l.preact_elems(), 3 * 6 * 6);
        assert_eq!(l.output_elems(), 3 * 3 * 3);
        assert_eq!(l.param_count(), 3 * 2 * 9 + 3);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut l = small_layer(false);
        let delta = Tensor::zeros(&[1, 3, 6, 6]);
        assert!(matches!(
            l.backward(&delta),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn relu_masks_backward_flow() {
        // With all-negative pre-activations and ReLU, gradients must vanish.
        let mut l = Conv2d::new(1, 3, 3, 1, 1, 1, 0, Activation::Relu, false, 3).unwrap();
        {
            let (w, b) = l.weights_mut();
            w.data_mut().fill(1.0);
            b.data_mut().fill(-100.0); // force z < 0 everywhere
        }
        let x = init::uniform(&[1, 1, 3, 3], 0.0, 1.0, 5);
        let _ = l.forward(&x).unwrap();
        let delta = Tensor::ones(&[1, 1, 3, 3]);
        let dinput = l.backward(&delta).unwrap();
        assert!(dinput.data().iter().all(|&g| g == 0.0));
        let (dw, db) = l.grads().unwrap();
        assert!(dw.data().iter().all(|&g| g == 0.0));
        assert!(db.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn gradient_check_full_layer() {
        // End-to-end finite differences through conv + tanh (+ pool).
        for maxpool in [false, true] {
            let mut l = Conv2d::new(1, 4, 4, 2, 3, 1, 1, Activation::Tanh, maxpool, 11).unwrap();
            let x = init::uniform(&[1, 1, 4, 4], -1.0, 1.0, 12);
            let out = l.forward(&x).unwrap();
            let delta = Tensor::ones(out.dims());
            let dinput = l.backward(&delta).unwrap();
            let dw = l.grads().unwrap().0.clone();
            let eps = 1e-3f32;
            let loss =
                |l: &mut Conv2d, x: &Tensor| -> f32 { l.forward(x).unwrap().data().iter().sum() };
            for &i in &[0usize, 5, 11, 15] {
                let mut xp = x.clone();
                xp.data_mut()[i] += eps;
                let mut xm = x.clone();
                xm.data_mut()[i] -= eps;
                let num = (loss(&mut l, &xp) - loss(&mut l, &xm)) / (2.0 * eps);
                assert!(
                    (num - dinput.data()[i]).abs() < 0.05,
                    "maxpool={maxpool} dInput[{i}]: {num} vs {}",
                    dinput.data()[i]
                );
            }
            for &i in &[0usize, 8, 17] {
                let orig = l.weights().0.data()[i];
                l.weights_mut().0.data_mut()[i] = orig + eps;
                let up = loss(&mut l, &x);
                l.weights_mut().0.data_mut()[i] = orig - eps;
                let down = loss(&mut l, &x);
                l.weights_mut().0.data_mut()[i] = orig;
                let num = (up - down) / (2.0 * eps);
                assert!(
                    (num - dw.data()[i]).abs() < 0.05,
                    "maxpool={maxpool} dW[{i}]: {num} vs {}",
                    dw.data()[i]
                );
            }
        }
    }

    #[test]
    fn zero_and_clear() {
        let mut l = small_layer(false);
        let x = init::uniform(&[1, 2, 6, 6], -1.0, 1.0, 9);
        let y = l.forward(&x).unwrap();
        let _ = l.backward(&Tensor::ones(y.dims())).unwrap();
        assert!(l.grads().is_some());
        l.zero_grads();
        assert!(l.grads().is_none());
        l.clear_cache();
        assert!(l.backward(&Tensor::ones(y.dims())).is_err());
    }

    #[test]
    fn deterministic_init() {
        let a = small_layer(false);
        let b = small_layer(false);
        assert_eq!(a.weights().0.data(), b.weights().0.data());
    }
}
