//! Fully-connected (dense) layer.

use gradsec_tensor::ops::elementwise::hadamard_with;
use gradsec_tensor::ops::matmul::{dense_forward_fused_with, matmul_tn_with, matmul_with};
use gradsec_tensor::{init, BackendKind, Tensor};

use crate::activation::Activation;
use crate::layer::{Layer, LayerKind};
use crate::{NnError, Result};

/// A dense layer `Z = A·Wᵀ + b` with weights stored `(outputs, inputs)`,
/// matching the Darknet convention.
///
/// Four-dimensional inputs (the output of a convolutional stack) are
/// flattened automatically; the backward pass restores the original shape
/// so convolutional layers below receive a correctly-shaped error tensor.
///
/// # Example
///
/// ```
/// use gradsec_nn::layer::{Dense, Layer};
/// use gradsec_nn::activation::Activation;
/// use gradsec_tensor::Tensor;
///
/// # fn main() -> Result<(), gradsec_nn::NnError> {
/// // LeNet-5 L5: 768 -> 100 (Table 4).
/// let mut l5 = Dense::new(768, 100, Activation::Linear, 1)?;
/// let x = Tensor::zeros(&[32, 12, 8, 8]); // flattens to (32, 768)
/// let y = l5.forward(&x)?;
/// assert_eq!(y.dims(), &[32, 100]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    inputs: usize,
    outputs: usize,
    act: Activation,
    backend: BackendKind,
    weights: Tensor,
    bias: Tensor,
    dw: Option<Tensor>,
    db: Option<Tensor>,
    cached_input: Option<Tensor>,
    cached_preact: Option<Tensor>,
    cached_input_dims: Option<Vec<usize>>,
}

impl Dense {
    /// Builds a dense layer with Xavier-uniform weight initialisation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when either dimension is zero.
    pub fn new(inputs: usize, outputs: usize, act: Activation, seed: u64) -> Result<Self> {
        if inputs == 0 || outputs == 0 {
            return Err(NnError::BadConfig {
                reason: format!("dense dims must be non-zero, got {inputs}->{outputs}"),
            });
        }
        let weights = init::xavier_uniform(&[outputs, inputs], inputs, outputs, seed);
        let bias = Tensor::zeros(&[outputs]);
        Ok(Dense {
            inputs,
            outputs,
            act,
            backend: BackendKind::default(),
            weights,
            bias,
            dw: None,
            db: None,
            cached_input: None,
            cached_preact: None,
            cached_input_dims: None,
        })
    }

    fn flatten_input(&self, input: &Tensor) -> Result<Tensor> {
        let n_elems = input.numel();
        if !n_elems.is_multiple_of(self.inputs) {
            return Err(NnError::BadInput {
                expected: vec![self.inputs],
                actual: input.dims().to_vec(),
            });
        }
        let batch = n_elems / self.inputs;
        // Reject inputs whose leading dim disagrees with the inferred batch
        // (e.g. (3, 5) into a 15-input layer would silently misgroup).
        if input.shape().ndim() >= 2 && input.dims()[0] != batch {
            return Err(NnError::BadInput {
                expected: vec![batch, self.inputs],
                actual: input.dims().to_vec(),
            });
        }
        Ok(input.reshape(&[batch, self.inputs])?)
    }
}

impl Layer for Dense {
    fn kind(&self) -> LayerKind {
        LayerKind::Dense {
            inputs: self.inputs,
            outputs: self.outputs,
        }
    }

    fn backend(&self) -> BackendKind {
        self.backend
    }

    fn set_backend(&mut self, backend: BackendKind) {
        self.backend = backend;
    }

    fn activation(&self) -> Activation {
        self.act
    }

    fn input_elems(&self) -> usize {
        self.inputs
    }

    fn output_elems(&self) -> usize {
        self.outputs
    }

    fn preact_elems(&self) -> usize {
        self.outputs
    }

    fn param_count(&self) -> usize {
        self.weights.numel() + self.bias.numel()
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let flat = self.flatten_input(input)?;
        // Z (N, out) = A (N, in) · Wᵀ + b and A = f(Z), in one fused
        // kernel call: the Reference/Blocked defaults replay the
        // historical matmul → bias sweep → activation order
        // bit-for-bit, while Tiled seeds the bias and activates inside
        // its GEMM writeback.
        let (z, a) = dense_forward_fused_with(
            &flat,
            &self.weights,
            &self.bias,
            self.act.fused(),
            self.backend,
        )?;
        self.cached_input_dims = Some(input.dims().to_vec());
        self.cached_input = Some(flat);
        self.cached_preact = Some(z);
        Ok(a)
    }

    fn backward(&mut self, delta_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: 0 })?;
        let z = self
            .cached_preact
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: 0 })?;
        // δ_l = upstream ∗ f'(Z_l).
        let fprime = self.act.derivative_tensor(z);
        let delta_z = hadamard_with(delta_out, &fprime, self.backend)?;
        // dW (out, in) = δᵀ (out, N) · A (N, in)  — eq. (3): δ_l · A_{l−1}.
        self.dw = Some(matmul_tn_with(&delta_z, input, self.backend)?);
        // db (out) = column sums of δ.
        let batch = delta_z.dims()[0];
        let mut db = Tensor::zeros(&[self.outputs]);
        for i in 0..batch {
            for j in 0..self.outputs {
                db.data_mut()[j] += delta_z.data()[i * self.outputs + j];
            }
        }
        self.db = Some(db);
        // dA_{l−1} (N, in) = δ (N, out) · W (out, in) — the W_{l+1}·δ_{l+1}
        // term that the *previous* layer consumes.
        let dinput = matmul_with(&delta_z, &self.weights, self.backend)?;
        // Restore the caller's original (possibly 4-D) input shape.
        match &self.cached_input_dims {
            Some(dims) if dims.len() != 2 => Ok(dinput.reshape(dims)?),
            _ => Ok(dinput),
        }
    }

    fn weights(&self) -> (&Tensor, &Tensor) {
        (&self.weights, &self.bias)
    }

    fn weights_mut(&mut self) -> (&mut Tensor, &mut Tensor) {
        (&mut self.weights, &mut self.bias)
    }

    fn grads(&self) -> Option<(&Tensor, &Tensor)> {
        match (&self.dw, &self.db) {
            (Some(dw), Some(db)) => Some((dw, db)),
            _ => None,
        }
    }

    fn zero_grads(&mut self) {
        self.dw = None;
        self.db = None;
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
        self.cached_preact = None;
        self.cached_input_dims = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_tensor::init;

    #[test]
    fn rejects_zero_dims() {
        assert!(Dense::new(0, 5, Activation::Linear, 1).is_err());
        assert!(Dense::new(5, 0, Activation::Linear, 1).is_err());
    }

    #[test]
    fn forward_shapes_and_flattening() {
        let mut l = Dense::new(12, 4, Activation::Relu, 1).unwrap();
        let x2d = init::uniform(&[3, 12], -1.0, 1.0, 2);
        assert_eq!(l.forward(&x2d).unwrap().dims(), &[3, 4]);
        let x4d = init::uniform(&[3, 3, 2, 2], -1.0, 1.0, 3);
        assert_eq!(l.forward(&x4d).unwrap().dims(), &[3, 4]);
        // Backward restores the 4-D shape.
        let delta = Tensor::ones(&[3, 4]);
        assert_eq!(l.backward(&delta).unwrap().dims(), &[3, 3, 2, 2]);
    }

    #[test]
    fn rejects_misaligned_input() {
        let mut l = Dense::new(15, 2, Activation::Linear, 1).unwrap();
        // 3*5 = 15 elements but leading dim 3 disagrees with inferred batch 1.
        let x = Tensor::zeros(&[3, 5]);
        assert!(l.forward(&x).is_err());
        // 16 elements is not a multiple of 15.
        assert!(l.forward(&Tensor::zeros(&[16])).is_err());
    }

    #[test]
    fn known_linear_map() {
        let mut l = Dense::new(2, 2, Activation::Linear, 1).unwrap();
        {
            let (w, b) = l.weights_mut();
            w.data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]); // rows = outputs
            b.data_mut().copy_from_slice(&[10.0, 20.0]);
        }
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.data(), &[13.0, 27.0]);
    }

    #[test]
    fn gradient_check() {
        let mut l = Dense::new(6, 3, Activation::Sigmoid, 21).unwrap();
        let x = init::uniform(&[2, 6], -1.0, 1.0, 22);
        let out = l.forward(&x).unwrap();
        let delta = Tensor::ones(out.dims());
        let dinput = l.backward(&delta).unwrap();
        let dw = l.grads().unwrap().0.clone();
        let db = l.grads().unwrap().1.clone();
        let eps = 1e-3f32;
        let loss = |l: &mut Dense, x: &Tensor| -> f32 { l.forward(x).unwrap().data().iter().sum() };
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&mut l, &xp) - loss(&mut l, &xm)) / (2.0 * eps);
            assert!((num - dinput.data()[i]).abs() < 0.02);
        }
        for i in 0..dw.numel() {
            let orig = l.weights().0.data()[i];
            l.weights_mut().0.data_mut()[i] = orig + eps;
            let up = loss(&mut l, &x);
            l.weights_mut().0.data_mut()[i] = orig - eps;
            let down = loss(&mut l, &x);
            l.weights_mut().0.data_mut()[i] = orig;
            let num = (up - down) / (2.0 * eps);
            assert!((num - dw.data()[i]).abs() < 0.02);
        }
        for i in 0..db.numel() {
            let orig = l.weights().1.data()[i];
            l.weights_mut().1.data_mut()[i] = orig + eps;
            let up = loss(&mut l, &x);
            l.weights_mut().1.data_mut()[i] = orig - eps;
            let down = loss(&mut l, &x);
            l.weights_mut().1.data_mut()[i] = orig;
            let num = (up - down) / (2.0 * eps);
            assert!((num - db.data()[i]).abs() < 0.02);
        }
    }

    #[test]
    fn footprint_accessors() {
        let l = Dense::new(768, 100, Activation::Linear, 1).unwrap();
        assert_eq!(l.input_elems(), 768);
        assert_eq!(l.output_elems(), 100);
        assert_eq!(l.preact_elems(), 100);
        assert_eq!(l.param_count(), 76_900);
        assert!(l.kind().is_dense());
    }

    #[test]
    fn backward_before_forward() {
        let mut l = Dense::new(4, 2, Activation::Linear, 1).unwrap();
        assert!(matches!(
            l.backward(&Tensor::zeros(&[1, 2])),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }
}
