//! Network layers.
//!
//! Each layer caches its input `A_{l−1}` and pre-activation `Z_l` during
//! [`Layer::forward`] so that [`Layer::backward`] can evaluate the paper's
//! backpropagation equations (3)–(4) and expose `dW_l`/`db_l`.
//!
//! The caches are exactly the tensors GradSec moves into the enclave when a
//! layer is protected — see the `gradsec-core` crate's memory model, which
//! calls [`Layer::input_elems`] / [`Layer::output_elems`] /
//! [`Layer::param_count`] to size the secure allocations.

mod conv2d;
mod dense;

pub use conv2d::Conv2d;
pub use dense::Dense;

use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::Result;
use gradsec_tensor::{BackendKind, Tensor};

/// Static description of a layer's type and geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution, optionally fused with 2×2/2 max pooling
    /// (the paper's `Conv2D+MP2`).
    Conv2d {
        /// Output filter count.
        filters: usize,
        /// Square kernel edge.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Whether an `MP2` max-pool follows the activation.
        maxpool: bool,
    },
    /// Fully-connected layer.
    Dense {
        /// Input feature count.
        inputs: usize,
        /// Output feature count (neurons).
        outputs: usize,
    },
}

impl LayerKind {
    /// `true` for convolutional layers.
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerKind::Conv2d { .. })
    }

    /// `true` for dense (fully-connected) layers.
    pub fn is_dense(&self) -> bool {
        matches!(self, LayerKind::Dense { .. })
    }
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayerKind::Conv2d {
                filters,
                kernel,
                stride,
                pad,
                maxpool,
            } => {
                write!(f, "Conv2D({filters} f, {kernel}x{kernel}/{stride}/{pad})")?;
                if *maxpool {
                    write!(f, "+MP2")?;
                }
                Ok(())
            }
            LayerKind::Dense { inputs, outputs } => write!(f, "Dense({inputs}->{outputs})"),
        }
    }
}

/// A trainable network layer.
///
/// Layers are stateful: [`Layer::forward`] caches whatever the backward pass
/// needs (`A_{l−1}`, `Z_l`, pooling argmaxes) and [`Layer::backward`]
/// produces the parameter gradients retrievable via [`Layer::grads`] while
/// returning `∂Loss/∂A_{l−1}` for the preceding layer.
pub trait Layer: Send {
    /// Static description of the layer.
    fn kind(&self) -> LayerKind;

    /// The tensor kernel backend every forward/backward pass of this
    /// layer dispatches through ([`BackendKind::Reference`] unless
    /// changed with [`Layer::set_backend`]).
    fn backend(&self) -> BackendKind;

    /// Points the layer at a different kernel backend. Weights, caches
    /// and gradients are untouched — only the kernels future passes use
    /// change. [`Layer::clone_box`] (and therefore
    /// [`crate::Sequential::replicate`]) carries the selection into every
    /// replica, which is how one federation-level choice reaches every
    /// per-client and per-worker model copy.
    fn set_backend(&mut self, backend: BackendKind);

    /// The activation function applied after the linear part.
    fn activation(&self) -> Activation;

    /// Per-sample input element count `|A_{l−1}|`.
    fn input_elems(&self) -> usize;

    /// Per-sample output element count `|A_l|` (after pooling, if fused).
    fn output_elems(&self) -> usize;

    /// Per-sample pre-activation element count `|Z_l|` (before pooling).
    fn preact_elems(&self) -> usize;

    /// Number of trainable parameters (weights + biases).
    fn param_count(&self) -> usize;

    /// Runs the forward pass over a batch, caching backward state.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape disagrees with the layer
    /// geometry.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Runs the backward pass given `∂Loss/∂A_l`, returning `∂Loss/∂A_{l−1}`
    /// and storing the parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] when no forward
    /// cache exists, or shape errors when `delta_out` is inconsistent.
    fn backward(&mut self, delta_out: &Tensor) -> Result<Tensor>;

    /// Returns `(W, b)`.
    fn weights(&self) -> (&Tensor, &Tensor);

    /// Returns `(W, b)` mutably (used by optimizers and FL weight loads).
    fn weights_mut(&mut self) -> (&mut Tensor, &mut Tensor);

    /// Returns `(dW, db)` if a backward pass has run since the last
    /// [`Layer::zero_grads`].
    fn grads(&self) -> Option<(&Tensor, &Tensor)>;

    /// Clears stored gradients.
    fn zero_grads(&mut self);

    /// Drops the forward caches (frees activation memory between cycles).
    fn clear_cache(&mut self);

    /// Deep-copies the layer into a fresh box — the mechanism behind
    /// [`crate::Sequential::replicate`], which hands every FL client /
    /// engine worker its own replica of a prototype model.
    fn clone_box(&self) -> Box<dyn Layer>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        let c = LayerKind::Conv2d {
            filters: 12,
            kernel: 5,
            stride: 2,
            pad: 2,
            maxpool: false,
        };
        assert_eq!(c.to_string(), "Conv2D(12 f, 5x5/2/2)");
        assert!(c.is_conv());
        let cm = LayerKind::Conv2d {
            filters: 64,
            kernel: 3,
            stride: 2,
            pad: 1,
            maxpool: true,
        };
        assert!(cm.to_string().ends_with("+MP2"));
        let d = LayerKind::Dense {
            inputs: 768,
            outputs: 100,
        };
        assert_eq!(d.to_string(), "Dense(768->100)");
        assert!(d.is_dense());
        assert!(!d.is_conv());
    }
}
