//! # gradsec-nn
//!
//! From-scratch convolutional neural-network framework — the Darknet
//! equivalent that the GradSec reproduction trains inside and outside the
//! simulated TrustZone enclave.
//!
//! The crate provides exactly what the paper's training pipeline needs:
//!
//! * [`layer`] — the [`Layer`](layer::Layer) trait with [`Conv2d`](layer::Conv2d)
//!   (optionally fused with 2×2 max pooling, the paper's `Conv2D+MP2`) and
//!   [`Dense`](layer::Dense) layers, each caching `A_{l−1}` and `Z_l` so the
//!   backward pass can evaluate the paper's equations (3)–(4),
//! * [`activation`] — ReLU/Sigmoid/Tanh/Linear with derivatives,
//! * [`loss`] — categorical cross-entropy over softmax (the paper's Loss) and
//!   MSE,
//! * [`optim`] — SGD (the FL client optimizer, eq. 1), Adam and L-BFGS (the
//!   optimizers the DRIA attacker uses),
//! * [`model`] — [`Sequential`](model::Sequential) with per-batch training,
//!   gradient snapshots and weight import/export for federated learning,
//! * [`gradient`] — [`GradientSnapshot`](gradient::GradientSnapshot) plus the
//!   *Flaw 1* reconstruction `dW = (W^{t+1} − W^t)/λ`,
//! * [`zoo`] — LeNet-5 and AlexNet exactly per the paper's Table 4.
//!
//! # Example
//!
//! ```
//! use gradsec_nn::zoo;
//!
//! let model = zoo::lenet5(42).unwrap();
//! assert_eq!(model.num_layers(), 5);
//! // L5 is the 768 -> 100 dense head from Table 4.
//! assert_eq!(model.layer(4).unwrap().param_count(), 768 * 100 + 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
mod error;
pub mod gradient;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod zoo;

pub use error::NnError;
pub use gradient::GradientSnapshot;
pub use model::Sequential;
// Re-exported so layers-above (fl, bench) can select kernel backends
// without depending on gradsec-tensor directly.
pub use gradsec_tensor::BackendKind;

/// Crate-wide result alias using [`NnError`].
pub type Result<T> = std::result::Result<T, NnError>;
