//! Loss functions.
//!
//! The paper trains multi-class classifiers with categorical cross-entropy
//! (its Table 2 `Loss`); the initial backward error is then
//! `δ_n = (Ŷ − Y)/m` — exactly the `l = n` case of equation (3).

use serde::{Deserialize, Serialize};

use gradsec_tensor::ops::reduce::softmax_rows;
use gradsec_tensor::Tensor;

use crate::{NnError, Result};

/// A differentiable training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Loss {
    /// Categorical cross-entropy over a softmax of the logits.
    #[default]
    CategoricalCrossEntropy,
    /// Mean squared error (used by the DRIA attacker's gradient-matching
    /// objective and for regression-style sanity tests).
    MeanSquaredError,
}

impl Loss {
    /// Evaluates the loss and its gradient w.r.t. the logits.
    ///
    /// `logits` and `targets` are `(N, K)`; for cross-entropy the targets
    /// must be one-hot (or soft) distributions per row. Returns
    /// `(loss_value, ∂Loss/∂logits)`, already averaged over the batch.
    ///
    /// # Errors
    ///
    /// Returns a tensor shape error when the operands disagree.
    pub fn evaluate(&self, logits: &Tensor, targets: &Tensor) -> Result<(f32, Tensor)> {
        if logits.dims() != targets.dims() {
            return Err(NnError::Tensor(
                gradsec_tensor::TensorError::ShapeMismatch {
                    op: "loss",
                    lhs: logits.dims().to_vec(),
                    rhs: targets.dims().to_vec(),
                },
            ));
        }
        if logits.shape().ndim() != 2 {
            return Err(NnError::Tensor(gradsec_tensor::TensorError::RankMismatch {
                op: "loss",
                expected: 2,
                actual: logits.shape().ndim(),
            }));
        }
        let n = logits.dims()[0].max(1) as f32;
        match self {
            Loss::CategoricalCrossEntropy => {
                let probs = softmax_rows(logits)?;
                // loss = −Σ y·log(p) / N, with clamping for numerical safety.
                let mut loss = 0.0f32;
                for (p, y) in probs.data().iter().zip(targets.data()) {
                    if *y > 0.0 {
                        loss -= y * p.max(1e-12).ln();
                    }
                }
                loss /= n;
                // δ = (softmax(logits) − Y)/N — the paper's (Ŷ − Y)/m.
                let delta = probs.zip_with(targets, |p, y| (p - y) / n)?;
                Ok((loss, delta))
            }
            Loss::MeanSquaredError => {
                let diff = logits.zip_with(targets, |a, b| a - b)?;
                let loss = diff.norm_sq() / (logits.numel().max(1) as f32);
                let scale = 2.0 / logits.numel().max(1) as f32;
                let delta = diff.map(|d| d * scale);
                Ok((loss, delta))
            }
        }
    }
}

impl std::fmt::Display for Loss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Loss::CategoricalCrossEntropy => f.write_str("categorical-cross-entropy"),
            Loss::MeanSquaredError => f.write_str("mse"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_tensor::init;

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        // Huge logit on the true class -> probability ~1 -> loss ~0.
        let logits = Tensor::from_vec(vec![50.0, 0.0, 0.0], &[1, 3]).unwrap();
        let y = Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 3]).unwrap();
        let (loss, delta) = Loss::CategoricalCrossEntropy.evaluate(&logits, &y).unwrap();
        assert!(loss < 1e-5);
        assert!(delta.data().iter().all(|d| d.abs() < 1e-5));
    }

    #[test]
    fn cross_entropy_uniform_prediction() {
        // Equal logits over K classes -> loss = ln K.
        let logits = Tensor::zeros(&[1, 4]);
        let y = Tensor::from_vec(vec![0.0, 1.0, 0.0, 0.0], &[1, 4]).unwrap();
        let (loss, _) = Loss::CategoricalCrossEntropy.evaluate(&logits, &y).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = init::uniform(&[2, 5], -1.0, 1.0, 31);
        let mut y = Tensor::zeros(&[2, 5]);
        y.set(&[0, 2], 1.0).unwrap();
        y.set(&[1, 0], 1.0).unwrap();
        let (_, delta) = Loss::CategoricalCrossEntropy.evaluate(&logits, &y).unwrap();
        let eps = 1e-3f32;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (up, _) = Loss::CategoricalCrossEntropy.evaluate(&lp, &y).unwrap();
            let (down, _) = Loss::CategoricalCrossEntropy.evaluate(&lm, &y).unwrap();
            let num = (up - down) / (2.0 * eps);
            assert!(
                (num - delta.data()[i]).abs() < 1e-2,
                "dlogits[{i}]: numeric {num} vs analytic {}",
                delta.data()[i]
            );
        }
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]).unwrap();
        let (loss, delta) = Loss::MeanSquaredError.evaluate(&a, &b).unwrap();
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4)/2
        assert_eq!(delta.data(), &[1.0, 2.0]); // 2/2 · diff
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Tensor::zeros(&[1, 2]);
        let b = Tensor::zeros(&[1, 3]);
        assert!(Loss::CategoricalCrossEntropy.evaluate(&a, &b).is_err());
        assert!(Loss::MeanSquaredError.evaluate(&a, &b).is_err());
        let v = Tensor::zeros(&[2]);
        assert!(Loss::CategoricalCrossEntropy.evaluate(&v, &v).is_err());
    }

    #[test]
    fn delta_rows_sum_to_zero_for_cross_entropy() {
        // softmax probabilities and one-hot targets both sum to 1 per row.
        let logits = init::uniform(&[3, 7], -2.0, 2.0, 33);
        let mut y = Tensor::zeros(&[3, 7]);
        for i in 0..3 {
            y.set(&[i, i * 2], 1.0).unwrap();
        }
        let (_, delta) = Loss::CategoricalCrossEntropy.evaluate(&logits, &y).unwrap();
        for i in 0..3 {
            let s: f32 = delta.data()[i * 7..(i + 1) * 7].iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }
}
