//! Classification metrics.

use gradsec_tensor::ops::reduce::argmax_rows;
use gradsec_tensor::Tensor;

use crate::Result;

/// Top-1 accuracy of `logits` against one-hot `targets`, both `(N, K)`.
///
/// # Errors
///
/// Returns rank errors for non-matrix inputs.
///
/// # Example
///
/// ```
/// use gradsec_nn::metrics::accuracy;
/// use gradsec_tensor::Tensor;
///
/// # fn main() -> Result<(), gradsec_nn::NnError> {
/// let logits = Tensor::from_vec(vec![2.0, 1.0, 0.0, 3.0], &[2, 2])?;
/// let y = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2])?;
/// assert_eq!(accuracy(&logits, &y)?, 0.5);
/// # Ok(())
/// # }
/// ```
pub fn accuracy(logits: &Tensor, targets: &Tensor) -> Result<f32> {
    let pred = argmax_rows(logits)?;
    let truth = argmax_rows(targets)?;
    let n = pred.len().max(1);
    let correct = pred.iter().zip(&truth).filter(|(p, t)| p == t).count();
    Ok(correct as f32 / n as f32)
}

/// A confusion pair count for binary problems: `(true_positive,
/// false_positive, true_negative, false_negative)` at threshold 0.5,
/// with `scores` being positive-class probabilities.
pub fn binary_confusion(scores: &[f32], labels: &[bool]) -> (usize, usize, usize, usize) {
    let mut tp = 0;
    let mut fp = 0;
    let mut tn = 0;
    let mut fnn = 0;
    for (&s, &y) in scores.iter().zip(labels) {
        let pred = s >= 0.5;
        match (pred, y) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, false) => tn += 1,
            (false, true) => fnn += 1,
        }
    }
    (tp, fp, tn, fnn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_full_and_zero() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let right = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let wrong = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]).unwrap();
        assert_eq!(accuracy(&logits, &right).unwrap(), 1.0);
        assert_eq!(accuracy(&logits, &wrong).unwrap(), 0.0);
    }

    #[test]
    fn confusion_counts() {
        let scores = [0.9, 0.2, 0.7, 0.1];
        let labels = [true, true, false, false];
        let (tp, fp, tn, fnn) = binary_confusion(&scores, &labels);
        assert_eq!((tp, fp, tn, fnn), (1, 1, 1, 1));
    }
}
