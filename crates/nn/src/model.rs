//! Sequential model container.

use serde::{Deserialize, Serialize};

use gradsec_tensor::ops::reduce::argmax_rows;
use gradsec_tensor::{BackendKind, Tensor};

use crate::gradient::{GradientSnapshot, LayerGradient};
use crate::layer::Layer;
use crate::loss::Loss;
use crate::optim::Optimizer;
use crate::{NnError, Result};

/// Serializable weights of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWeights {
    /// Weight matrix.
    pub w: Tensor,
    /// Bias vector.
    pub b: Tensor,
}

/// Serializable weights of a whole model — the object the FL server ships
/// to clients and the *state* whose per-cycle difference leaks gradients
/// via the paper's Flaw 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ModelWeights {
    layers: Vec<LayerWeights>,
}

impl ModelWeights {
    /// Builds from per-layer weights in layer order.
    pub fn new(layers: Vec<LayerWeights>) -> Self {
        ModelWeights { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Iterates over layers in order.
    pub fn iter(&self) -> impl Iterator<Item = &LayerWeights> {
        self.layers.iter()
    }

    /// The weights of layer `index`.
    pub fn layer(&self, index: usize) -> Option<&LayerWeights> {
        self.layers.get(index)
    }

    /// Total number of scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.numel() + l.b.numel()).sum()
    }

    /// In-place `self ← self + alpha·other` (FedAvg accumulation).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IncompatibleWeights`] on architecture mismatch.
    pub fn add_scaled(&mut self, other: &ModelWeights, alpha: f32) -> Result<()> {
        if self.layers.len() != other.layers.len() {
            return Err(NnError::IncompatibleWeights {
                reason: format!(
                    "layer counts differ: {} vs {}",
                    self.layers.len(),
                    other.layers.len()
                ),
            });
        }
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            if a.w.dims() != b.w.dims() || a.b.dims() != b.b.dims() {
                return Err(NnError::IncompatibleWeights {
                    reason: "layer weight shapes differ".to_owned(),
                });
            }
            for (x, &y) in a.w.data_mut().iter_mut().zip(b.w.data()) {
                *x += alpha * y;
            }
            for (x, &y) in a.b.data_mut().iter_mut().zip(b.b.data()) {
                *x += alpha * y;
            }
        }
        Ok(())
    }

    /// Scales all weights in place.
    pub fn scale(&mut self, s: f32) {
        for l in &mut self.layers {
            l.w.map_in_place(|x| x * s);
            l.b.map_in_place(|x| x * s);
        }
    }
}

/// Statistics from one training batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Correctly-classified samples.
    pub correct: usize,
    /// Batch size.
    pub total: usize,
}

impl BatchStats {
    /// Classification accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f32 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f32 / self.total as f32
        }
    }
}

/// A feed-forward stack of layers trained with a shared loss — the model
/// class assumed by the paper's threat model (§4: fully-connected and
/// convolutional feed-forward networks).
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    loss: Loss,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("loss", &self.loss)
            .field(
                "layers",
                &self
                    .layers
                    .iter()
                    .map(|l| l.kind().to_string())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Sequential {
    /// Creates an empty model with the given loss.
    pub fn new(loss: Loss) -> Self {
        Sequential {
            layers: Vec::new(),
            loss,
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// The training loss.
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// Number of layers (the paper's `n`).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Borrows layer `index`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchLayer`] when out of range.
    pub fn layer(&self, index: usize) -> Result<&dyn Layer> {
        self.layers
            .get(index)
            .map(|b| b.as_ref())
            .ok_or(NnError::NoSuchLayer {
                index,
                len: self.layers.len(),
            })
    }

    /// Mutably borrows layer `index`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchLayer`] when out of range.
    pub fn layer_mut(&mut self, index: usize) -> Result<&mut (dyn Layer + 'static)> {
        let len = self.layers.len();
        self.layers
            .get_mut(index)
            .map(|b| b.as_mut())
            .ok_or(NnError::NoSuchLayer { index, len })
    }

    /// Iterates over the layers in order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Layer> {
        self.layers.iter().map(|b| b.as_ref())
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Points every layer at `backend` for all future forward/backward
    /// passes. Weights are untouched, so switching backends mid-training
    /// is safe (though it changes subsequent rounding for non-reference
    /// backends). [`Sequential::replicate`] copies the selection into
    /// every replica — set it once on the prototype and every FL client
    /// and engine worker inherits it.
    pub fn set_backend(&mut self, backend: BackendKind) -> &mut Self {
        for l in &mut self.layers {
            l.set_backend(backend);
        }
        self
    }

    /// The kernel backend the model's layers dispatch through
    /// ([`BackendKind::Reference`] for empty models; layers are only ever
    /// assigned one backend collectively via
    /// [`Sequential::set_backend`]).
    pub fn backend(&self) -> BackendKind {
        self.layers.first().map(|l| l.backend()).unwrap_or_default()
    }

    /// Runs the full forward pass, caching per-layer state for backward.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyModel`] for empty models or shape errors from
    /// the layers.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::EmptyModel);
        }
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Runs the full backward pass from a loss delta, storing per-layer
    /// gradients; returns the error w.r.t. the model input (which the DRIA
    /// attacker uses to optimise dummy images).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] (with the correct layer
    /// index) when `forward` has not run.
    pub fn backward(&mut self, loss_delta: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::EmptyModel);
        }
        let mut delta = loss_delta.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            delta = layer.backward(&delta).map_err(|e| match e {
                NnError::BackwardBeforeForward { .. } => {
                    NnError::BackwardBeforeForward { layer: i }
                }
                other => other,
            })?;
        }
        Ok(delta)
    }

    /// Forward + loss + backward without a parameter update; returns the
    /// loss and the gradient snapshot. This is the attacker-side primitive
    /// (DRIA computes gradients of dummy data this way) and the measurement
    /// primitive for MIA features.
    ///
    /// # Errors
    ///
    /// Propagates forward/backward errors.
    pub fn forward_backward(
        &mut self,
        input: &Tensor,
        targets: &Tensor,
    ) -> Result<(f32, GradientSnapshot)> {
        let logits = self.forward(input)?;
        let (loss, delta) = self.loss.evaluate(&logits, targets)?;
        self.backward(&delta)?;
        let snapshot = self
            .gradient_snapshot()
            .expect("backward has just populated gradients");
        Ok((loss, snapshot))
    }

    /// One SGD training step over a batch: forward, loss, backward, update.
    ///
    /// Returns the batch statistics; gradients remain available through
    /// [`Sequential::gradient_snapshot`] until the next `zero_grads`.
    ///
    /// # Errors
    ///
    /// Propagates forward/backward errors.
    pub fn train_batch(
        &mut self,
        input: &Tensor,
        targets: &Tensor,
        opt: &mut dyn Optimizer,
    ) -> Result<BatchStats> {
        let logits = self.forward(input)?;
        let (loss, delta) = self.loss.evaluate(&logits, targets)?;
        let correct = count_correct(&logits, targets)?;
        self.backward(&delta)?;
        self.apply_gradients(opt);
        Ok(BatchStats {
            loss,
            correct,
            total: logits.dims()[0],
        })
    }

    /// Applies the stored gradients through `opt` (two slots per layer:
    /// weights then bias).
    pub fn apply_gradients(&mut self, opt: &mut dyn Optimizer) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let (dw, db) = match layer.grads() {
                Some((dw, db)) => (dw.clone(), db.clone()),
                None => continue,
            };
            let (w, b) = layer.weights_mut();
            opt.update(2 * i, w, &dw);
            opt.update(2 * i + 1, b, &db);
        }
    }

    /// Collects the per-layer gradients stored by the last backward pass.
    ///
    /// Returns `None` when any layer has no gradient (no backward ran).
    pub fn gradient_snapshot(&self) -> Option<GradientSnapshot> {
        let mut grads = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            let (dw, db) = layer.grads()?;
            grads.push(LayerGradient {
                layer: i,
                dw: dw.clone(),
                db: db.clone(),
            });
        }
        Some(GradientSnapshot::new(grads))
    }

    /// Exports all weights (deep copy).
    pub fn weights(&self) -> ModelWeights {
        ModelWeights::new(
            self.layers
                .iter()
                .map(|l| {
                    let (w, b) = l.weights();
                    LayerWeights {
                        w: w.clone(),
                        b: b.clone(),
                    }
                })
                .collect(),
        )
    }

    /// Imports weights (the FL model download step, Figure 2-➋).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IncompatibleWeights`] on any architecture
    /// mismatch.
    pub fn set_weights(&mut self, weights: &ModelWeights) -> Result<()> {
        if weights.num_layers() != self.layers.len() {
            return Err(NnError::IncompatibleWeights {
                reason: format!(
                    "model has {} layers, weights have {}",
                    self.layers.len(),
                    weights.num_layers()
                ),
            });
        }
        for (layer, lw) in self.layers.iter_mut().zip(weights.iter()) {
            let (w, b) = layer.weights_mut();
            if w.dims() != lw.w.dims() || b.dims() != lw.b.dims() {
                return Err(NnError::IncompatibleWeights {
                    reason: "layer weight shapes differ".to_owned(),
                });
            }
            w.data_mut().copy_from_slice(lw.w.data());
            b.data_mut().copy_from_slice(lw.b.data());
        }
        Ok(())
    }

    /// Clears stored gradients on every layer.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// Drops all forward caches (frees activation memory between cycles).
    pub fn clear_caches(&mut self) {
        for l in &mut self.layers {
            l.clear_cache();
        }
    }

    /// Deep-copies the model: identical weights and architecture, with
    /// caches and gradients cleared. This is how the federation hands
    /// every client (and every engine worker) its own replica of one
    /// prototype without re-running weight initialisation per copy.
    pub fn replicate(&self) -> Sequential {
        let mut copy = Sequential {
            layers: self.layers.iter().map(|l| l.clone_box()).collect(),
            loss: self.loss,
        };
        copy.zero_grads();
        copy.clear_caches();
        copy
    }

    /// Classification accuracy of the model on `(input, one-hot targets)`.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn accuracy(&mut self, input: &Tensor, targets: &Tensor) -> Result<f32> {
        let logits = self.forward(input)?;
        let correct = count_correct(&logits, targets)?;
        Ok(correct as f32 / logits.dims()[0].max(1) as f32)
    }
}

fn count_correct(logits: &Tensor, targets: &Tensor) -> Result<usize> {
    let pred = argmax_rows(logits)?;
    let truth = argmax_rows(targets)?;
    Ok(pred.iter().zip(&truth).filter(|(p, t)| p == t).count())
}

#[cfg(test)]
mod replicate_tests {
    use crate::zoo;
    use gradsec_tensor::init;

    #[test]
    fn replica_matches_prototype_and_diverges_independently() {
        let proto = zoo::tiny_mlp(16, 8, 2, 3).unwrap();
        let mut a = proto.replicate();
        let b = proto.replicate();
        assert_eq!(a.weights(), proto.weights());
        assert_eq!(b.weights(), proto.weights());
        // Train one replica; the other and the prototype stay untouched.
        let x = init::uniform(&[4, 16], -1.0, 1.0, 1);
        let y = {
            let mut t = gradsec_tensor::Tensor::zeros(&[4, 2]);
            for i in 0..4 {
                t.set(&[i, i % 2], 1.0).unwrap();
            }
            t
        };
        let mut opt = crate::optim::Sgd::new(0.1);
        a.train_batch(&x, &y, &mut opt).unwrap();
        assert_ne!(a.weights(), proto.weights());
        assert_eq!(b.weights(), proto.weights());
        // Replicating a trained model copies the trained weights.
        let c = a.replicate();
        assert_eq!(c.weights(), a.weights());
    }

    #[test]
    fn replicas_inherit_the_prototype_backend() {
        use gradsec_tensor::BackendKind;
        let mut proto = zoo::tiny_mlp(16, 8, 2, 3).unwrap();
        assert_eq!(proto.backend(), BackendKind::Reference);
        proto.set_backend(BackendKind::Blocked);
        assert_eq!(proto.backend(), BackendKind::Blocked);
        let replica = proto.replicate();
        assert_eq!(replica.backend(), BackendKind::Blocked);
        for l in replica.iter() {
            assert_eq!(l.backend(), BackendKind::Blocked);
        }
    }

    #[test]
    fn blocked_backend_trains_close_to_reference() {
        use gradsec_tensor::BackendKind;
        let proto = zoo::lenet5_with(2, 7).unwrap();
        let x = init::uniform(&[2, 3, 32, 32], 0.0, 1.0, 2);
        let mut y = gradsec_tensor::Tensor::zeros(&[2, 2]);
        y.set(&[0, 0], 1.0).unwrap();
        y.set(&[1, 1], 1.0).unwrap();
        let run = |backend: BackendKind| {
            let mut m = proto.replicate();
            m.set_backend(backend);
            let mut opt = crate::optim::Sgd::new(0.05);
            let stats = m.train_batch(&x, &y, &mut opt).unwrap();
            (stats.loss, m.weights())
        };
        let (loss_ref, w_ref) = run(BackendKind::Reference);
        let (loss_blk, w_blk) = run(BackendKind::Blocked);
        assert!(
            (loss_ref - loss_blk).abs() < 1e-4,
            "{loss_ref} vs {loss_blk}"
        );
        for (a, b) in w_ref.iter().zip(w_blk.iter()) {
            assert!(a.w.approx_eq(&b.w, 1e-3));
            assert!(a.b.approx_eq(&b.b, 1e-3));
        }
    }

    #[test]
    fn replica_of_conv_model_trains() {
        let proto = zoo::lenet5_with(2, 7).unwrap();
        let mut r = proto.replicate();
        let x = init::uniform(&[2, 3, 32, 32], 0.0, 1.0, 2);
        let mut y = gradsec_tensor::Tensor::zeros(&[2, 2]);
        y.set(&[0, 0], 1.0).unwrap();
        y.set(&[1, 1], 1.0).unwrap();
        let mut opt = crate::optim::Sgd::new(0.05);
        let stats = r.train_batch(&x, &y, &mut opt).unwrap();
        assert!(stats.loss.is_finite());
        assert_ne!(r.weights(), proto.weights());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layer::Dense;
    use crate::optim::Sgd;
    use gradsec_tensor::init;

    fn xor_model(seed: u64) -> Sequential {
        let mut m = Sequential::new(Loss::CategoricalCrossEntropy);
        m.push(Box::new(Dense::new(2, 8, Activation::Tanh, seed).unwrap()));
        m.push(Box::new(
            Dense::new(8, 2, Activation::Linear, seed + 1).unwrap(),
        ));
        m
    }

    fn xor_data() -> (Tensor, Tensor) {
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]).unwrap();
        let y = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0], &[4, 2]).unwrap();
        (x, y)
    }

    #[test]
    fn empty_model_errors() {
        let mut m = Sequential::new(Loss::CategoricalCrossEntropy);
        assert!(matches!(
            m.forward(&Tensor::zeros(&[1, 2])),
            Err(NnError::EmptyModel)
        ));
        assert!(matches!(
            m.backward(&Tensor::zeros(&[1, 2])),
            Err(NnError::EmptyModel)
        ));
    }

    #[test]
    fn learns_xor() {
        let mut m = xor_model(5);
        let (x, y) = xor_data();
        let mut opt = Sgd::new(0.5);
        let mut last = f32::INFINITY;
        for _ in 0..600 {
            last = m.train_batch(&x, &y, &mut opt).unwrap().loss;
        }
        assert!(last < 0.05, "final loss {last}");
        assert_eq!(m.accuracy(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn snapshot_roundtrip_and_flaw1_consistency() {
        // The gradient snapshot from backward must equal the Flaw 1
        // weight-diff reconstruction after one plain SGD step.
        let mut m = xor_model(9);
        let (x, y) = xor_data();
        let lr = 0.25f32;
        let before = m.weights();
        let mut opt = Sgd::new(lr);
        m.train_batch(&x, &y, &mut opt).unwrap();
        let true_grads = m.gradient_snapshot().unwrap();
        let after = m.weights();
        let leaked = GradientSnapshot::from_weight_diff(&before, &after, lr).unwrap();
        assert!(leaked.distance(&true_grads).unwrap() < 1e-4);
    }

    #[test]
    fn weights_import_export() {
        let mut a = xor_model(1);
        let mut b = xor_model(2);
        let (x, _) = xor_data();
        let ya = a.forward(&x).unwrap();
        b.set_weights(&a.weights()).unwrap();
        let yb = b.forward(&x).unwrap();
        assert!(ya.approx_eq(&yb, 1e-6));
    }

    #[test]
    fn set_weights_rejects_mismatch() {
        let mut a = xor_model(1);
        let w = ModelWeights::new(vec![]);
        assert!(a.set_weights(&w).is_err());
        let mut tiny = Sequential::new(Loss::CategoricalCrossEntropy);
        tiny.push(Box::new(Dense::new(2, 2, Activation::Linear, 3).unwrap()));
        tiny.push(Box::new(Dense::new(2, 2, Activation::Linear, 4).unwrap()));
        assert!(a.set_weights(&tiny.weights()).is_err());
    }

    #[test]
    fn model_weights_arithmetic() {
        let m = xor_model(3);
        let mut w = m.weights();
        let w2 = m.weights();
        let n = w.param_count();
        assert_eq!(n, 2 * 8 + 8 + 8 * 2 + 2);
        w.add_scaled(&w2, 1.0).unwrap();
        w.scale(0.5);
        for (a, b) in w.iter().zip(w2.iter()) {
            assert!(a.w.approx_eq(&b.w, 1e-6));
        }
        assert!(w.add_scaled(&ModelWeights::default(), 1.0).is_err());
    }

    #[test]
    fn backward_before_forward_reports_layer_index() {
        let mut m = xor_model(4);
        let err = m.backward(&Tensor::zeros(&[1, 2])).unwrap_err();
        assert!(matches!(err, NnError::BackwardBeforeForward { layer: 1 }));
    }

    #[test]
    fn gradient_snapshot_none_before_backward() {
        let m = xor_model(6);
        assert!(m.gradient_snapshot().is_none());
    }

    #[test]
    fn zero_grads_and_clear_caches() {
        let mut m = xor_model(7);
        let (x, y) = xor_data();
        m.forward_backward(&x, &y).unwrap();
        assert!(m.gradient_snapshot().is_some());
        m.zero_grads();
        assert!(m.gradient_snapshot().is_none());
        m.clear_caches();
        assert!(m.backward(&Tensor::zeros(&[4, 2])).is_err());
    }

    #[test]
    fn layer_accessors() {
        let m = xor_model(8);
        assert!(m.layer(0).is_ok());
        assert!(m.layer(2).is_err());
        assert_eq!(m.iter().count(), 2);
        let dbg = format!("{m:?}");
        assert!(dbg.contains("Dense(2->8)"));
    }

    #[test]
    fn accuracy_on_known_predictions() {
        let mut m = Sequential::new(Loss::CategoricalCrossEntropy);
        m.push(Box::new(Dense::new(2, 2, Activation::Linear, 10).unwrap()));
        {
            let l = m.layer_mut(0).unwrap();
            let (w, b) = l.weights_mut();
            // Identity map: prediction = argmax(input).
            w.data_mut().copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
            b.data_mut().fill(0.0);
        }
        let x = init::uniform(&[8, 2], 0.0, 1.0, 11);
        let mut y = Tensor::zeros(&[8, 2]);
        for i in 0..8 {
            let c = if x.get(&[i, 0]).unwrap() > x.get(&[i, 1]).unwrap() {
                0
            } else {
                1
            };
            y.set(&[i, c], 1.0).unwrap();
        }
        assert_eq!(m.accuracy(&x, &y).unwrap(), 1.0);
    }
}
