//! Adam optimizer (Kingma & Ba, 2015 — paper reference [26]).

use std::collections::HashMap;

use gradsec_tensor::Tensor;

use crate::optim::Optimizer;

/// Adam with bias-corrected first/second moment estimates.
///
/// The DRIA attacker offers Adam as one of its optimisation back-ends for
/// gradient matching (paper §3.2: "through an optimisation algorithm
/// (Adam, LBFGS, …)").
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    state: HashMap<usize, AdamSlot>,
}

#[derive(Debug, Clone)]
struct AdamSlot {
    m: Tensor,
    v: Tensor,
    t: u32,
}

impl Adam {
    /// Creates Adam with the canonical hyper-parameters
    /// `β1 = 0.9, β2 = 0.999, ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam::with_params(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates Adam with explicit hyper-parameters.
    pub fn with_params(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            state: HashMap::new(),
        }
    }

    /// Drops all moment state (restart the schedule).
    pub fn reset(&mut self) {
        self.state.clear();
    }
}

impl Optimizer for Adam {
    fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) {
        debug_assert_eq!(param.numel(), grad.numel());
        let s = self.state.entry(slot).or_insert_with(|| AdamSlot {
            m: Tensor::zeros(grad.dims()),
            v: Tensor::zeros(grad.dims()),
            t: 0,
        });
        s.t += 1;
        let b1t = 1.0 - self.beta1.powi(s.t as i32);
        let b2t = 1.0 - self.beta2.powi(s.t as i32);
        for (((m, v), p), &g) in
            s.m.data_mut()
                .iter_mut()
                .zip(s.v.data_mut())
                .zip(param.data_mut())
                .zip(grad.data())
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / b1t;
            let v_hat = *v / b2t;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_magnitude_is_lr() {
        // With zero state, |Δ| ≈ lr regardless of gradient scale.
        let mut opt = Adam::new(0.1);
        for &g0 in &[0.001f32, 1.0, 1000.0] {
            opt.reset();
            let mut w = Tensor::zeros(&[1]);
            let g = Tensor::from_vec(vec![g0], &[1]).unwrap();
            opt.update(0, &mut w, &g);
            assert!(
                (w.data()[0].abs() - 0.1).abs() < 1e-3,
                "step for g={g0} was {}",
                w.data()[0]
            );
        }
    }

    #[test]
    fn descends_a_quadratic() {
        // Minimise f(x) = (x − 3)², ∇f = 2(x − 3).
        let mut opt = Adam::new(0.2);
        let mut x = Tensor::from_vec(vec![-5.0], &[1]).unwrap();
        for _ in 0..300 {
            let g = Tensor::from_vec(vec![2.0 * (x.data()[0] - 3.0)], &[1]).unwrap();
            opt.update(0, &mut x, &g);
        }
        assert!((x.data()[0] - 3.0).abs() < 0.05, "x = {}", x.data()[0]);
    }

    #[test]
    fn slots_are_independent() {
        let mut opt = Adam::new(0.1);
        let g = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let mut a = Tensor::zeros(&[1]);
        opt.update(0, &mut a, &g);
        opt.update(0, &mut a, &g);
        let mut b = Tensor::zeros(&[1]);
        opt.update(1, &mut b, &g);
        // Slot 1 is on its first step; slot 0 on its second — different t.
        assert!(a.data()[0] != 2.0 * b.data()[0]);
    }

    #[test]
    fn reset_clears_schedule() {
        let mut opt = Adam::new(0.1);
        let g = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let mut w1 = Tensor::zeros(&[1]);
        opt.update(0, &mut w1, &g);
        let first = w1.data()[0];
        opt.reset();
        let mut w2 = Tensor::zeros(&[1]);
        opt.update(0, &mut w2, &g);
        assert_eq!(first, w2.data()[0]);
    }
}
