//! Limited-memory BFGS (paper reference [34]).
//!
//! The reference DRIA implementation performs its gradient-matching descent
//! with L-BFGS (paper §8.1). This module provides a self-contained
//! minimiser for black-box objectives `f: ℝⁿ → ℝ` with caller-supplied
//! gradients, using the classic two-loop recursion and a backtracking
//! Armijo line search.

use gradsec_tensor::Tensor;

use crate::{NnError, Result};

/// Configuration for [`minimize`].
#[derive(Debug, Clone, Copy)]
pub struct LbfgsConfig {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// History length `m` (number of curvature pairs kept).
    pub history: usize,
    /// Convergence threshold on the gradient's Euclidean norm.
    pub grad_tol: f32,
    /// Initial step length tried by the line search.
    pub initial_step: f32,
    /// Backtracking shrink factor in `(0, 1)`.
    pub backtrack: f32,
    /// Armijo sufficient-decrease constant in `(0, 1)`.
    pub armijo_c: f32,
    /// Maximum backtracking steps per iteration.
    pub max_line_search: usize,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        LbfgsConfig {
            max_iters: 100,
            history: 10,
            grad_tol: 1e-6,
            initial_step: 1.0,
            backtrack: 0.5,
            armijo_c: 1e-4,
            max_line_search: 20,
        }
    }
}

/// Outcome of an L-BFGS run.
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// The minimiser found.
    pub x: Tensor,
    /// Objective value at `x`.
    pub value: f32,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether the gradient-norm tolerance was reached.
    pub converged: bool,
}

/// Minimises `f` starting from `x0`.
///
/// The objective returns `(value, gradient)`; the gradient must have the
/// same shape as `x0`.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] for non-positive iteration counts, empty
/// starting points, or an objective returning a wrongly-shaped gradient.
pub fn minimize<F>(f: F, x0: &Tensor, cfg: &LbfgsConfig) -> Result<LbfgsResult>
where
    F: Fn(&Tensor) -> (f32, Tensor),
{
    if cfg.max_iters == 0 || cfg.history == 0 {
        return Err(NnError::BadConfig {
            reason: "lbfgs max_iters and history must be positive".to_owned(),
        });
    }
    if x0.numel() == 0 {
        return Err(NnError::BadConfig {
            reason: "lbfgs starting point is empty".to_owned(),
        });
    }
    let n = x0.numel();
    let mut x = x0.clone();
    let (mut fx, mut grad) = f(&x);
    if grad.numel() != n {
        return Err(NnError::BadConfig {
            reason: format!(
                "objective returned gradient of {} elements for {n}-element x",
                grad.numel()
            ),
        });
    }
    // Curvature pairs (s_k, y_k, ρ_k), most recent last.
    let mut s_hist: Vec<Vec<f32>> = Vec::new();
    let mut y_hist: Vec<Vec<f32>> = Vec::new();
    let mut rho_hist: Vec<f32> = Vec::new();

    let dot = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| x * y).sum() };

    let mut iterations = 0;
    let mut converged = false;
    for _ in 0..cfg.max_iters {
        iterations += 1;
        let gnorm = grad.norm();
        if gnorm <= cfg.grad_tol {
            converged = true;
            break;
        }
        // Two-loop recursion: d = −H·∇f.
        let mut q: Vec<f32> = grad.data().to_vec();
        let k = s_hist.len();
        let mut alphas = vec![0.0f32; k];
        for i in (0..k).rev() {
            let a = rho_hist[i] * dot(&s_hist[i], &q);
            alphas[i] = a;
            for (qj, yj) in q.iter_mut().zip(&y_hist[i]) {
                *qj -= a * yj;
            }
        }
        // Initial Hessian scaling γ = sᵀy / yᵀy of the newest pair.
        if let (Some(s), Some(y)) = (s_hist.last(), y_hist.last()) {
            let sy = dot(s, y);
            let yy = dot(y, y);
            if yy > 0.0 && sy > 0.0 {
                let gamma = sy / yy;
                for qj in q.iter_mut() {
                    *qj *= gamma;
                }
            }
        }
        for i in 0..k {
            let beta = rho_hist[i] * dot(&y_hist[i], &q);
            for (qj, sj) in q.iter_mut().zip(&s_hist[i]) {
                *qj += sj * (alphas[i] - beta);
            }
        }
        // Direction d = −q; Armijo backtracking from the initial step.
        let dir_dot_grad = -dot(&q, grad.data());
        if dir_dot_grad >= 0.0 {
            // Not a descent direction (can happen with noisy objectives):
            // fall back to steepest descent.
            q.copy_from_slice(grad.data());
        }
        let descent = (-dot(&q, grad.data())).min(-f32::EPSILON);
        // Weak-Wolfe line search by bisection bracketing: Armijo for
        // sufficient decrease plus a curvature condition, which guarantees
        // sᵀy > 0 so every accepted step yields a usable curvature pair
        // (Armijo alone lets the history go stale and the search crawl).
        const WOLFE_C2: f32 = 0.9;
        let mut lo = 0.0f32;
        let mut hi = f32::INFINITY;
        let mut step = cfg.initial_step;
        let mut accepted = false;
        let mut fallback: Option<(Tensor, f32, Tensor)> = None;
        let mut new_x = x.clone();
        let mut new_fx = fx;
        let mut new_grad = grad.clone();
        for _ in 0..cfg.max_line_search {
            for ((nx, &xi), &qi) in new_x.data_mut().iter_mut().zip(x.data()).zip(q.iter()) {
                *nx = xi - step * qi;
            }
            let (val, g) = f(&new_x);
            let armijo_ok = val <= fx + cfg.armijo_c * step * descent;
            if !armijo_ok {
                // Too long: insufficient decrease.
                hi = step;
                step = 0.5 * (lo + hi);
                continue;
            }
            // Armijo holds — remember this point in case curvature never does.
            fallback = Some((new_x.clone(), val, g.clone()));
            let new_dir_deriv = -dot(&q, g.data());
            if new_dir_deriv < WOLFE_C2 * descent {
                // Too short: directional derivative still strongly negative.
                lo = step;
                step = if hi.is_finite() {
                    0.5 * (lo + hi)
                } else {
                    2.0 * step
                };
                continue;
            }
            new_fx = val;
            new_grad = g;
            accepted = true;
            break;
        }
        if !accepted {
            match fallback {
                // Settle for the best Armijo point found.
                Some((fx_x, fx_val, fx_g)) => {
                    new_x = fx_x;
                    new_fx = fx_val;
                    new_grad = fx_g;
                }
                // No decrease found at all — the local model is exhausted.
                None => break,
            }
        }
        if std::env::var("LBFGS_DEBUG").is_ok() {
            eprintln!(
                "it {iterations}: f {fx} -> {new_fx}, step {step}, hist {}",
                s_hist.len()
            );
        }
        // Store the curvature pair.
        let s: Vec<f32> = new_x
            .data()
            .iter()
            .zip(x.data())
            .map(|(a, b)| a - b)
            .collect();
        let y: Vec<f32> = new_grad
            .data()
            .iter()
            .zip(grad.data())
            .map(|(a, b)| a - b)
            .collect();
        let sy = dot(&s, &y);
        if sy > 1e-10 {
            if s_hist.len() == cfg.history {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            rho_hist.push(1.0 / sy);
            s_hist.push(s);
            y_hist.push(y);
        }
        x = new_x.clone();
        fx = new_fx;
        grad = new_grad;
    }
    Ok(LbfgsResult {
        x,
        value: fx,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        // f(x) = Σ (x_i − i)²
        let f = |x: &Tensor| -> (f32, Tensor) {
            let mut val = 0.0;
            let mut g = Tensor::zeros(x.dims());
            for (i, (&xi, gi)) in x.data().iter().zip(g.data_mut()).enumerate() {
                let d = xi - i as f32;
                val += d * d;
                *gi = 2.0 * d;
            }
            (val, g)
        };
        let x0 = Tensor::zeros(&[5]);
        let res = minimize(f, &x0, &LbfgsConfig::default()).unwrap();
        assert!(res.converged, "did not converge: {res:?}");
        for (i, &xi) in res.x.data().iter().enumerate() {
            assert!((xi - i as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn minimizes_rosenbrock() {
        // The classic banana function: minimum at (1, 1).
        let f = |x: &Tensor| -> (f32, Tensor) {
            let (a, b) = (x.data()[0], x.data()[1]);
            let val = (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2);
            let g = Tensor::from_vec(
                vec![
                    -2.0 * (1.0 - a) - 400.0 * a * (b - a * a),
                    200.0 * (b - a * a),
                ],
                &[2],
            )
            .unwrap();
            (val, g)
        };
        let x0 = Tensor::from_vec(vec![-1.2, 1.0], &[2]).unwrap();
        let cfg = LbfgsConfig {
            max_iters: 200,
            grad_tol: 1e-4,
            ..LbfgsConfig::default()
        };
        let res = minimize(f, &x0, &cfg).unwrap();
        assert!(
            (res.x.data()[0] - 1.0).abs() < 1e-2 && (res.x.data()[1] - 1.0).abs() < 1e-2,
            "ended at {:?} after {} iters",
            res.x.data(),
            res.iterations
        );
    }

    #[test]
    fn monotone_nonincreasing_value() {
        // The Armijo condition guarantees the final value is <= start.
        let f = |x: &Tensor| -> (f32, Tensor) {
            let v = x.norm_sq();
            (v, x.map(|xi| 2.0 * xi))
        };
        let x0 = Tensor::from_vec(vec![3.0, -4.0], &[2]).unwrap();
        let res = minimize(f, &x0, &LbfgsConfig::default()).unwrap();
        assert!(res.value <= 25.0);
        assert!(res.value < 1e-6);
    }

    #[test]
    fn rejects_bad_config() {
        let f = |x: &Tensor| (0.0f32, Tensor::zeros(x.dims()));
        let x0 = Tensor::zeros(&[2]);
        let bad = LbfgsConfig {
            max_iters: 0,
            ..LbfgsConfig::default()
        };
        assert!(minimize(f, &x0, &bad).is_err());
        assert!(minimize(f, &Tensor::zeros(&[0]), &LbfgsConfig::default()).is_err());
    }

    #[test]
    fn rejects_wrong_gradient_shape() {
        let f = |_: &Tensor| (1.0f32, Tensor::zeros(&[3]));
        let x0 = Tensor::zeros(&[2]);
        assert!(minimize(f, &x0, &LbfgsConfig::default()).is_err());
    }
}
