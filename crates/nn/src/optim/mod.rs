//! Optimizers.
//!
//! * [`Sgd`] — the FL clients' update rule (paper eq. 1,
//!   `W^{t+1} = W^t − λ·dW`), with optional momentum,
//! * [`Adam`] — used by the DRIA attacker as one of its two optimisation
//!   back-ends (paper §3.2),
//! * [`lbfgs`] — the L-BFGS minimiser the reference DRIA implementation
//!   uses (paper §8.1).

mod adam;
pub mod lbfgs;
mod sgd;

pub use adam::Adam;
pub use sgd::Sgd;

use gradsec_tensor::Tensor;

/// A stateful first-order optimizer.
///
/// `slot` identifies a parameter tensor across calls so stateful optimizers
/// (momentum, Adam moments) can keep per-parameter state; models assign one
/// slot per parameter tensor in layer order.
pub trait Optimizer: Send {
    /// Applies one update `param ← param − f(grad)` in place.
    fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor);

    /// Returns the current base learning rate `λ`.
    fn learning_rate(&self) -> f32;

    /// Replaces the base learning rate.
    fn set_learning_rate(&mut self, lr: f32);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Object safety: the trainer stores `Box<dyn Optimizer>`.
    #[test]
    fn optimizer_is_object_safe() {
        fn take(_o: &mut dyn Optimizer) {}
        let mut sgd = Sgd::new(0.1);
        take(&mut sgd);
        let mut adam = Adam::new(0.001);
        take(&mut adam);
    }
}
