//! Stochastic gradient descent.

use std::collections::HashMap;

use gradsec_tensor::Tensor;

use crate::optim::Optimizer;

/// Plain SGD with optional classical momentum.
///
/// Without momentum this is exactly the paper's equation (1):
/// `W^{t+1}_l = W^t_l − λ·dW_l` — the update whose observability from the
/// normal world constitutes *Flaw 1*.
///
/// # Example
///
/// ```
/// use gradsec_nn::optim::{Optimizer, Sgd};
/// use gradsec_tensor::Tensor;
///
/// let mut opt = Sgd::new(0.5);
/// let mut w = Tensor::from_vec(vec![1.0], &[1]).unwrap();
/// let g = Tensor::from_vec(vec![2.0], &[1]).unwrap();
/// opt.update(0, &mut w, &g);
/// assert_eq!(w.data(), &[0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<usize, Tensor>,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Creates SGD with classical momentum `μ`:
    /// `v ← μ·v + dW; W ← W − λ·v`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// The momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) {
        debug_assert_eq!(param.numel(), grad.numel());
        if self.momentum == 0.0 {
            for (p, &g) in param.data_mut().iter_mut().zip(grad.data()) {
                *p -= self.lr * g;
            }
            return;
        }
        let v = self
            .velocity
            .entry(slot)
            .or_insert_with(|| Tensor::zeros(grad.dims()));
        for ((vi, p), &g) in v
            .data_mut()
            .iter_mut()
            .zip(param.data_mut())
            .zip(grad.data())
        {
            *vi = self.momentum * *vi + g;
            *p -= self.lr * *vi;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_is_eq1() {
        let mut opt = Sgd::new(0.1);
        let mut w = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![10.0, -10.0], &[2]).unwrap();
        opt.update(0, &mut w, &g);
        assert_eq!(w.data(), &[0.0, 3.0]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::with_momentum(1.0, 0.5);
        let mut w = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        let g = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        opt.update(0, &mut w, &g); // v=1, w=-1
        opt.update(0, &mut w, &g); // v=1.5, w=-2.5
        assert!((w.data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn momentum_state_is_per_slot() {
        let mut opt = Sgd::with_momentum(1.0, 0.9);
        let g = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let mut w0 = Tensor::zeros(&[1]);
        let mut w1 = Tensor::zeros(&[1]);
        opt.update(0, &mut w0, &g);
        opt.update(1, &mut w1, &g);
        // Both slots see a fresh velocity -> identical first steps.
        assert_eq!(w0.data(), w1.data());
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn weight_diff_recovers_gradient_flaw1() {
        // The attack the paper's Flaw 1 describes: dW = (W_t − W_{t+1})/λ.
        let lr = 0.05f32;
        let mut opt = Sgd::new(lr);
        let before = Tensor::from_vec(vec![0.3, -0.7, 1.1], &[3]).unwrap();
        let grad = Tensor::from_vec(vec![0.5, 0.25, -1.0], &[3]).unwrap();
        let mut after = before.clone();
        opt.update(0, &mut after, &grad);
        for i in 0..3 {
            let recovered = (before.data()[i] - after.data()[i]) / lr;
            assert!((recovered - grad.data()[i]).abs() < 1e-5);
        }
    }
}
