//! Model zoo — the two architectures of the paper's Table 4.
//!
//! | Model | Layers |
//! |---|---|
//! | LeNet-5 | 4× Conv2D(12 f, 5×5) + Dense(768→100) |
//! | AlexNet | 5× Conv2D(64/192/384/256/256, 3×3, MP2 on L1/L2/L5) + Dense(1024→4096→4096→100) |
//!
//! Note on padding: the paper's Table 4 lists `P = 0` for LeNet-5's L1 while
//! simultaneously reporting a 16×16×12 output for a 32×32×3 input under a
//! 5×5/2 kernel — only possible with Darknet's implicit `pad = k/2 = 2`.
//! We follow the *shapes* (which the memory model and the TEE footprints of
//! Table 6 depend on) and use `pad = 2`.

use crate::activation::Activation;
use crate::layer::{Conv2d, Dense};
use crate::loss::Loss;
use crate::model::Sequential;
use crate::Result;

/// Input image geometry used by both models: 32×32 RGB (CIFAR-scale).
pub const INPUT_CHANNELS: usize = 3;
/// Input image height/width.
pub const INPUT_HW: usize = 32;

/// Builds the paper's LeNet-5 variant for `classes` output classes.
///
/// Layers (Table 4): L1–L4 Conv2D with 12 filters (5×5; strides 2,2,1,1),
/// L5 Dense 768→`classes`.
///
/// # Errors
///
/// Propagates layer construction errors (zero classes).
pub fn lenet5_with(classes: usize, seed: u64) -> Result<Sequential> {
    let mut m = Sequential::new(Loss::CategoricalCrossEntropy);
    // L1: 32x32x3 -> 16x16x12
    m.push(Box::new(Conv2d::new(
        3,
        32,
        32,
        12,
        5,
        2,
        2,
        Activation::Relu,
        false,
        seed,
    )?));
    // L2: 16x16x12 -> 8x8x12
    m.push(Box::new(Conv2d::new(
        12,
        16,
        16,
        12,
        5,
        2,
        2,
        Activation::Relu,
        false,
        seed + 1,
    )?));
    // L3: 8x8x12 -> 8x8x12
    m.push(Box::new(Conv2d::new(
        12,
        8,
        8,
        12,
        5,
        1,
        2,
        Activation::Relu,
        false,
        seed + 2,
    )?));
    // L4: 8x8x12 -> 8x8x12
    m.push(Box::new(Conv2d::new(
        12,
        8,
        8,
        12,
        5,
        1,
        2,
        Activation::Relu,
        false,
        seed + 3,
    )?));
    // L5: 768 -> classes
    m.push(Box::new(Dense::new(
        768,
        classes,
        Activation::Linear,
        seed + 4,
    )?));
    Ok(m)
}

/// The paper's LeNet-5 with the CIFAR-100 head (100 classes).
///
/// # Errors
///
/// Propagates layer construction errors.
pub fn lenet5(seed: u64) -> Result<Sequential> {
    lenet5_with(100, seed)
}

/// Builds the paper's AlexNet variant for `classes` output classes.
///
/// Layers (Table 4): five 3×3 convolutions (MP2 after L1, L2 and L5)
/// followed by Dense 1024→4096→4096→`classes`.
///
/// # Errors
///
/// Propagates layer construction errors (zero classes).
pub fn alexnet_with(classes: usize, seed: u64) -> Result<Sequential> {
    let mut m = Sequential::new(Loss::CategoricalCrossEntropy);
    // L1: 32x32x3 -> conv 16x16x64 -> MP2 8x8x64
    m.push(Box::new(Conv2d::new(
        3,
        32,
        32,
        64,
        3,
        2,
        1,
        Activation::Relu,
        true,
        seed,
    )?));
    // L2: 8x8x64 -> conv 8x8x192 -> MP2 4x4x192
    m.push(Box::new(Conv2d::new(
        64,
        8,
        8,
        192,
        3,
        1,
        1,
        Activation::Relu,
        true,
        seed + 1,
    )?));
    // L3: 4x4x192 -> 4x4x384
    m.push(Box::new(Conv2d::new(
        192,
        4,
        4,
        384,
        3,
        1,
        1,
        Activation::Relu,
        false,
        seed + 2,
    )?));
    // L4: 4x4x384 -> 4x4x256
    m.push(Box::new(Conv2d::new(
        384,
        4,
        4,
        256,
        3,
        1,
        1,
        Activation::Relu,
        false,
        seed + 3,
    )?));
    // L5: 4x4x256 -> conv 4x4x256 -> MP2 2x2x256
    m.push(Box::new(Conv2d::new(
        256,
        4,
        4,
        256,
        3,
        1,
        1,
        Activation::Relu,
        true,
        seed + 4,
    )?));
    // L6: 1024 -> 4096
    m.push(Box::new(Dense::new(
        1024,
        4096,
        Activation::Relu,
        seed + 5,
    )?));
    // L7: 4096 -> 4096
    m.push(Box::new(Dense::new(
        4096,
        4096,
        Activation::Relu,
        seed + 6,
    )?));
    // L8: 4096 -> classes
    m.push(Box::new(Dense::new(
        4096,
        classes,
        Activation::Linear,
        seed + 7,
    )?));
    Ok(m)
}

/// The paper's AlexNet with the CIFAR-100 head (100 classes).
///
/// # Errors
///
/// Propagates layer construction errors.
pub fn alexnet(seed: u64) -> Result<Sequential> {
    alexnet_with(100, seed)
}

/// The paper's LeNet-5 with sigmoid activations instead of ReLU.
///
/// The DRIA/DLG attack requires a twice-differentiable model — Zhu et
/// al. explicitly replace ReLU with sigmoid "since DLG requires the model
/// to be twice differentiable" — so the Figure 5 experiments attack this
/// variant, exactly as the reference implementation the paper builds on
/// does. Architecture and shapes are identical to [`lenet5_with`].
///
/// # Errors
///
/// Propagates layer construction errors (zero classes).
pub fn lenet5_smooth_with(classes: usize, seed: u64) -> Result<Sequential> {
    let mut m = lenet5_with(classes, seed)?;
    // Rebuild with sigmoid activations (same geometry, same seeds).
    let mut smooth = Sequential::new(Loss::CategoricalCrossEntropy);
    smooth.push(Box::new(Conv2d::new(
        3,
        32,
        32,
        12,
        5,
        2,
        2,
        Activation::Sigmoid,
        false,
        seed,
    )?));
    smooth.push(Box::new(Conv2d::new(
        12,
        16,
        16,
        12,
        5,
        2,
        2,
        Activation::Sigmoid,
        false,
        seed + 1,
    )?));
    smooth.push(Box::new(Conv2d::new(
        12,
        8,
        8,
        12,
        5,
        1,
        2,
        Activation::Sigmoid,
        false,
        seed + 2,
    )?));
    smooth.push(Box::new(Conv2d::new(
        12,
        8,
        8,
        12,
        5,
        1,
        2,
        Activation::Sigmoid,
        false,
        seed + 3,
    )?));
    smooth.push(Box::new(Dense::new(
        768,
        classes,
        Activation::Linear,
        seed + 4,
    )?));
    // Keep the ReLU twin's weights so both variants are comparable.
    smooth.set_weights(&m.weights())?;
    m.clear_caches();
    Ok(smooth)
}

/// [`lenet5_smooth_with`] with the CIFAR-100 head.
///
/// # Errors
///
/// Propagates layer construction errors.
pub fn lenet5_smooth(seed: u64) -> Result<Sequential> {
    lenet5_smooth_with(100, seed)
}

/// A small two-layer MLP, used by tests and examples that do not need a
/// convolutional stack.
///
/// # Errors
///
/// Propagates layer construction errors (zero dims).
pub fn tiny_mlp(inputs: usize, hidden: usize, outputs: usize, seed: u64) -> Result<Sequential> {
    let mut m = Sequential::new(Loss::CategoricalCrossEntropy);
    m.push(Box::new(Dense::new(
        inputs,
        hidden,
        Activation::Tanh,
        seed,
    )?));
    m.push(Box::new(Dense::new(
        hidden,
        outputs,
        Activation::Linear,
        seed + 1,
    )?));
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_tensor::Tensor;

    #[test]
    fn lenet5_shapes_match_table4() {
        let mut m = lenet5(1).unwrap();
        assert_eq!(m.num_layers(), 5);
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        let y = m.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 100]);
        // Per-layer output sizes per Table 4.
        let expected_out = [16 * 16 * 12, 8 * 8 * 12, 8 * 8 * 12, 8 * 8 * 12, 100];
        for (i, &e) in expected_out.iter().enumerate() {
            assert_eq!(m.layer(i).unwrap().output_elems(), e, "layer {}", i + 1);
        }
        // L5 (dense) input is the flattened 768 of Table 4.
        assert_eq!(m.layer(4).unwrap().input_elems(), 768);
    }

    #[test]
    fn lenet5_param_counts() {
        let m = lenet5(1).unwrap();
        // L1: 12 filters x 5x5x3 + 12 biases.
        assert_eq!(m.layer(0).unwrap().param_count(), 12 * 75 + 12);
        // L2-L4: 12 x 5x5x12 + 12.
        for i in 1..4 {
            assert_eq!(m.layer(i).unwrap().param_count(), 12 * 300 + 12);
        }
        // L5: the "fairly large number of parameters (76.8K)" of §8.3.
        assert_eq!(m.layer(4).unwrap().param_count(), 76_900);
    }

    #[test]
    fn alexnet_shapes_match_table4() {
        let mut m = alexnet(1).unwrap();
        assert_eq!(m.num_layers(), 8);
        let x = Tensor::zeros(&[1, 3, 32, 32]);
        let y = m.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 100]);
        let expected_out = [
            8 * 8 * 64,
            4 * 4 * 192,
            4 * 4 * 384,
            4 * 4 * 256,
            2 * 2 * 256,
            4096,
            4096,
            100,
        ];
        for (i, &e) in expected_out.iter().enumerate() {
            assert_eq!(m.layer(i).unwrap().output_elems(), e, "layer {}", i + 1);
        }
        assert_eq!(m.layer(5).unwrap().input_elems(), 1024);
    }

    #[test]
    fn conv_dense_split() {
        let m = alexnet(2).unwrap();
        for i in 0..5 {
            assert!(m.layer(i).unwrap().kind().is_conv());
        }
        for i in 5..8 {
            assert!(m.layer(i).unwrap().kind().is_dense());
        }
    }

    #[test]
    fn custom_class_counts() {
        let mut m = lenet5_with(2, 3).unwrap();
        let x = Tensor::zeros(&[1, 3, 32, 32]);
        assert_eq!(m.forward(&x).unwrap().dims(), &[1, 2]);
    }

    #[test]
    fn tiny_mlp_works() {
        let mut m = tiny_mlp(4, 8, 3, 5).unwrap();
        let x = Tensor::zeros(&[2, 4]);
        assert_eq!(m.forward(&x).unwrap().dims(), &[2, 3]);
    }
}
