//! Property-based tests for the NN substrate.

use gradsec_nn::activation::Activation;
use gradsec_nn::gradient::GradientSnapshot;
use gradsec_nn::layer::{Dense, Layer};
use gradsec_nn::loss::Loss;
use gradsec_nn::optim::{Optimizer, Sgd};
use gradsec_nn::zoo;
use gradsec_tensor::{init, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dense_gradient_check(inputs in 2usize..8, outputs in 2usize..6, seed in 0u64..500) {
        // Finite-difference validation of eq. (3) on random geometry.
        let mut l = Dense::new(inputs, outputs, Activation::Tanh, seed).unwrap();
        let x = init::uniform(&[2, inputs], -1.0, 1.0, seed + 1);
        let out = l.forward(&x).unwrap();
        let delta = Tensor::ones(out.dims());
        let dinput = l.backward(&delta).unwrap();
        let eps = 1e-3f32;
        let loss = |l: &mut Dense, x: &Tensor| -> f32 {
            l.forward(x).unwrap().data().iter().sum()
        };
        for i in 0..x.numel().min(6) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&mut l, &xp) - loss(&mut l, &xm)) / (2.0 * eps);
            prop_assert!((num - dinput.data()[i]).abs() < 0.05);
        }
    }

    #[test]
    fn cross_entropy_loss_is_nonnegative(n in 1usize..6, k in 2usize..8, seed in 0u64..500) {
        let logits = init::uniform(&[n, k], -3.0, 3.0, seed);
        let mut y = Tensor::zeros(&[n, k]);
        for i in 0..n {
            y.set(&[i, (seed as usize + i) % k], 1.0).unwrap();
        }
        let (loss, delta) = Loss::CategoricalCrossEntropy.evaluate(&logits, &y).unwrap();
        prop_assert!(loss >= 0.0);
        prop_assert!(delta.data().iter().all(|d| d.is_finite()));
        // Per-row delta sums vanish (softmax and one-hot both normalise).
        for i in 0..n {
            let s: f32 = delta.data()[i * k..(i + 1) * k].iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }

    #[test]
    fn sgd_step_is_linear_in_lr(lr in 0.001f32..0.5, g0 in -2.0f32..2.0) {
        let grad = Tensor::from_vec(vec![g0], &[1]).unwrap();
        let mut w = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        Sgd::new(lr).update(0, &mut w, &grad);
        prop_assert!((w.data()[0] - (1.0 - lr * g0)).abs() < 1e-5);
    }

    #[test]
    fn flaw1_recovers_gradients_for_any_lr(lr in 0.001f32..0.9, seed in 0u64..500) {
        // Weight-diffing (paper eq. 2) inverts any plain SGD step exactly.
        let mut model = zoo::tiny_mlp(4, 5, 3, seed).unwrap();
        let x = init::uniform(&[4, 4], -1.0, 1.0, seed + 1);
        let mut y = Tensor::zeros(&[4, 3]);
        for i in 0..4 {
            y.set(&[i, i % 3], 1.0).unwrap();
        }
        let before = model.weights();
        let mut opt = Sgd::new(lr);
        model.train_batch(&x, &y, &mut opt).unwrap();
        let true_grads = model.gradient_snapshot().unwrap();
        let leaked = GradientSnapshot::from_weight_diff(&before, &model.weights(), lr).unwrap();
        let rel = leaked.distance(&true_grads).unwrap()
            / (1.0 + true_grads.to_flat().iter().map(|x| x * x).sum::<f32>().sqrt());
        prop_assert!(rel < 1e-2, "relative recovery error {rel}");
    }

    #[test]
    fn snapshot_scale_accumulate_algebra(s in -2.0f32..2.0, seed in 0u64..500) {
        let mut model = zoo::tiny_mlp(3, 4, 2, seed).unwrap();
        let x = init::uniform(&[2, 3], -1.0, 1.0, seed);
        let y = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let (_, g) = model.forward_backward(&x, &y).unwrap();
        // g*s + g*(1-s) == g.
        let mut a = g.clone();
        a.scale(s);
        let mut b = g.clone();
        b.scale(1.0 - s);
        a.accumulate(&b).unwrap();
        prop_assert!(a.distance(&g).unwrap() < 1e-4);
    }

    #[test]
    fn weights_roundtrip_preserves_forward(seed in 0u64..500) {
        let mut m1 = zoo::tiny_mlp(6, 8, 3, seed).unwrap();
        let mut m2 = zoo::tiny_mlp(6, 8, 3, seed + 99).unwrap();
        m2.set_weights(&m1.weights()).unwrap();
        let x = init::uniform(&[3, 6], -1.0, 1.0, seed + 1);
        let y1 = m1.forward(&x).unwrap();
        let y2 = m2.forward(&x).unwrap();
        prop_assert!(y1.approx_eq(&y2, 1e-6));
    }

    #[test]
    fn layer_footprints_are_consistent(inputs in 1usize..20, outputs in 1usize..20) {
        let l = Dense::new(inputs, outputs, Activation::Linear, 1).unwrap();
        prop_assert_eq!(l.param_count(), inputs * outputs + outputs);
        prop_assert_eq!(l.input_elems(), inputs);
        prop_assert_eq!(l.output_elems(), outputs);
        prop_assert_eq!(l.preact_elems(), outputs);
    }
}
