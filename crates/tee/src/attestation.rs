//! Remote attestation (paper §7.3).
//!
//! > "RA allows the FL server to ensure that the client code is correctly
//! > executed in the TEE enclave. Despite the lack of native support for
//! > RA for TrustZone enclaves, support can be provided by leveraging
//! > novel solutions or by the incorporation of a hardware chip (e.g.,
//! > Trusted Platform Module)."
//!
//! We simulate the TPM-style design: each device holds an attestation key
//! provisioned at manufacture and shared with the verifier (a symmetric
//! simplification of an EK certificate chain). A quote binds the TA's
//! measurement to a verifier-chosen nonce, preventing replay. The FL
//! server uses [`verify_quote`] to gate client selection (paper Figure
//! 2-➊).

use serde::{Deserialize, Serialize};

use crate::crypto::hmac::{hmac_sha256, hmac_verify};
use crate::ta::Uuid;
use crate::{Result, TeeError};

/// A SHA-256 measurement of TA code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Measurement(pub [u8; 32]);

/// A verifier-issued freshness challenge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Challenge {
    /// Random nonce the quote must echo.
    pub nonce: [u8; 16],
}

impl Challenge {
    /// Creates a challenge from explicit nonce bytes (the verifier draws
    /// them from its RNG).
    pub fn new(nonce: [u8; 16]) -> Self {
        Challenge { nonce }
    }
}

/// A signed attestation quote.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// Identity of the attested TA.
    pub ta: Uuid,
    /// The reported code measurement.
    pub measurement: Measurement,
    /// Echo of the verifier's nonce.
    pub nonce: [u8; 16],
    /// HMAC signature under the device attestation key.
    pub signature: [u8; 32],
}

fn quote_bytes(ta: Uuid, measurement: &Measurement, nonce: &[u8; 16]) -> Vec<u8> {
    let mut v = Vec::with_capacity(16 + 32 + 16);
    v.extend_from_slice(ta.as_bytes());
    v.extend_from_slice(&measurement.0);
    v.extend_from_slice(nonce);
    v
}

/// Produces a quote on the device (inside the TEE / TPM).
pub fn sign_quote(
    attestation_key: &[u8],
    ta: Uuid,
    measurement: Measurement,
    challenge: &Challenge,
) -> Quote {
    let signature = hmac_sha256(
        attestation_key,
        &quote_bytes(ta, &measurement, &challenge.nonce),
    );
    Quote {
        ta,
        measurement,
        nonce: challenge.nonce,
        signature,
    }
}

/// Verifies a quote on the FL server.
///
/// Checks, in order: nonce freshness, signature validity, and measurement
/// against the expected (whitelisted) TA code hash.
///
/// # Errors
///
/// Returns [`TeeError::IntegrityViolation`] naming the failed check.
pub fn verify_quote(
    attestation_key: &[u8],
    quote: &Quote,
    expected: Measurement,
    challenge: &Challenge,
) -> Result<()> {
    if quote.nonce != challenge.nonce {
        return Err(TeeError::IntegrityViolation {
            context: "attestation nonce (replay)",
        });
    }
    let msg = quote_bytes(quote.ta, &quote.measurement, &quote.nonce);
    if !hmac_verify(attestation_key, &msg, &quote.signature) {
        return Err(TeeError::IntegrityViolation {
            context: "attestation signature",
        });
    }
    if quote.measurement != expected {
        return Err(TeeError::IntegrityViolation {
            context: "attestation measurement (unexpected TA code)",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::sha256::sha256;

    fn setup() -> (Uuid, Measurement, Challenge) {
        (
            Uuid::from_name("gradsec-ta"),
            Measurement(sha256(b"gradsec-ta-code-v1")),
            Challenge::new([7u8; 16]),
        )
    }

    #[test]
    fn honest_quote_verifies() {
        let (ta, m, ch) = setup();
        let q = sign_quote(b"device-key", ta, m, &ch);
        assert!(verify_quote(b"device-key", &q, m, &ch).is_ok());
    }

    #[test]
    fn wrong_key_rejected() {
        let (ta, m, ch) = setup();
        let q = sign_quote(b"attacker-key", ta, m, &ch);
        let err = verify_quote(b"device-key", &q, m, &ch).unwrap_err();
        assert!(
            matches!(err, TeeError::IntegrityViolation { context } if context.contains("signature"))
        );
    }

    #[test]
    fn stale_nonce_rejected() {
        let (ta, m, _) = setup();
        let old = Challenge::new([1u8; 16]);
        let fresh = Challenge::new([2u8; 16]);
        let q = sign_quote(b"device-key", ta, m, &old);
        let err = verify_quote(b"device-key", &q, m, &fresh).unwrap_err();
        assert!(
            matches!(err, TeeError::IntegrityViolation { context } if context.contains("nonce"))
        );
    }

    #[test]
    fn modified_measurement_rejected() {
        let (ta, m, ch) = setup();
        let evil = Measurement(sha256(b"backdoored-ta"));
        // Device honestly signs the evil measurement; verifier's whitelist
        // catches it.
        let q = sign_quote(b"device-key", ta, evil, &ch);
        let err = verify_quote(b"device-key", &q, m, &ch).unwrap_err();
        assert!(
            matches!(err, TeeError::IntegrityViolation { context } if context.contains("measurement"))
        );
        // Forging the measurement field after signing breaks the signature.
        let mut forged = sign_quote(b"device-key", ta, evil, &ch);
        forged.measurement = m;
        let err = verify_quote(b"device-key", &forged, m, &ch).unwrap_err();
        assert!(
            matches!(err, TeeError::IntegrityViolation { context } if context.contains("signature"))
        );
    }

    #[test]
    fn quote_binds_ta_identity() {
        let (ta, m, ch) = setup();
        let mut q = sign_quote(b"device-key", ta, m, &ch);
        q.ta = Uuid::from_name("other-ta");
        assert!(verify_quote(b"device-key", &q, m, &ch).is_err());
    }
}
