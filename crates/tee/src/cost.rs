//! Deterministic cost model for simulated training time.
//!
//! The paper's Table 6 decomposes one FL training cycle into three parts:
//!
//! 1. **user time** — computation in the normal world,
//! 2. **kernel time** — computation inside the enclave plus the secure
//!    monitor crossings,
//! 3. **allocation time** — provisioning TEE memory for protected weights
//!    before training starts (dominant for the 76.8 K-parameter L5).
//!
//! Because this reproduction runs on arbitrary hardware rather than the
//! paper's Raspberry Pi 3B+, wall-clock timings would be meaningless to
//! compare. Instead the trainer charges a deterministic [`SimClock`]
//! through this [`CostModel`], whose constants are calibrated once against
//! the paper's baseline row (2.191 s user + 0.021 s kernel for LeNet-5,
//! batch 32) and the per-layer allocation column. Criterion benches
//! measure *real* wall clock separately.
//!
//! Calibration (documented so it can be re-derived):
//!
//! * One simulated cycle = 10 batches of 32 images. LeNet-5 forward+backward
//!   ≈ 2,995,200 MAC ops per image → 958.46 M ops per cycle; matching
//!   2.191 s gives **2.286 ns/op** in the normal world.
//! * Secure-world compute carries a 1.2× multiplier (enclave page-table and
//!   cache effects measured by DarkneTZ-class systems).
//! * One monitor crossing costs **3.2 ms** (full context/cache/TLB switch
//!   on the Pi-class core; fitted from Table 6's L3 row).
//! * Allocation: **60 µs per parameter + 0.1 s fixed per protected layer**;
//!   a two-point fit through Table 6's L2 (3,612 params → 0.34 s) and L5
//!   (76,900 params → 4.68 s) rows.

use serde::{Deserialize, Serialize};

/// Cost constants for the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Nanoseconds per MAC op in the normal world.
    pub ns_per_op_normal: f64,
    /// Nanoseconds per MAC op inside the enclave.
    pub ns_per_op_secure: f64,
    /// Nanoseconds per secure-monitor crossing (one direction).
    pub ns_per_crossing: f64,
    /// Allocation nanoseconds per protected parameter.
    pub alloc_ns_per_param: f64,
    /// Fixed allocation nanoseconds per protected layer.
    pub alloc_ns_fixed: f64,
}

impl CostModel {
    /// The Raspberry Pi 3B+ calibration used throughout the reproduction
    /// (see module docs for the derivation).
    pub fn raspberry_pi3() -> Self {
        CostModel {
            ns_per_op_normal: 2.286,
            ns_per_op_secure: 2.286 * 1.2,
            ns_per_crossing: 3.2e6,
            alloc_ns_per_param: 60_000.0,
            alloc_ns_fixed: 0.1e9,
        }
    }

    /// A zero-cost model (unit tests that only check accounting structure).
    pub fn free() -> Self {
        CostModel {
            ns_per_op_normal: 0.0,
            ns_per_op_secure: 0.0,
            ns_per_crossing: 0.0,
            alloc_ns_per_param: 0.0,
            alloc_ns_fixed: 0.0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::raspberry_pi3()
    }
}

/// The user/kernel/allocation decomposition of one training cycle, in
/// seconds (Table 6's three-way split).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Normal-world compute seconds.
    pub user_s: f64,
    /// Enclave compute + crossing seconds.
    pub kernel_s: f64,
    /// TEE memory provisioning seconds.
    pub alloc_s: f64,
}

impl TimeBreakdown {
    /// Total seconds.
    pub fn total_s(&self) -> f64 {
        self.user_s + self.kernel_s + self.alloc_s
    }

    /// Percentage overhead relative to a baseline cycle — the paper's
    /// "(X% overhead)" annotation: `total/total_baseline − 1`, in percent.
    pub fn overhead_vs(&self, baseline: &TimeBreakdown) -> f64 {
        let b = baseline.total_s();
        if b == 0.0 {
            return 0.0;
        }
        (self.total_s() / b - 1.0) * 100.0
    }

    /// Weighted combination of several breakdowns — used for dynamic
    /// GradSec's `V_MW`-weighted average rows of Table 6.
    ///
    /// Weights need not be normalised; a zero total weight yields zeros.
    pub fn weighted_average(items: &[(TimeBreakdown, f64)]) -> TimeBreakdown {
        let total_w: f64 = items.iter().map(|(_, w)| w).sum();
        if total_w == 0.0 {
            return TimeBreakdown::default();
        }
        let mut out = TimeBreakdown::default();
        for (t, w) in items {
            out.user_s += t.user_s * w / total_w;
            out.kernel_s += t.kernel_s * w / total_w;
            out.alloc_s += t.alloc_s * w / total_w;
        }
        out
    }
}

/// The wire-bytes bill of one client's cycle: what the model payloads
/// actually cost on the wire under the session's update codec, next to
/// what they would have cost dense. Encoded bytes are the billable
/// column; the raw column exists so compression ratios can be reported
/// without re-encoding anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WireBill {
    /// Encoded bytes of the model-download payload (server → client).
    pub download_encoded_bytes: u64,
    /// Dense-equivalent bytes of the same download payload.
    pub download_raw_bytes: u64,
    /// Encoded bytes of the update-upload payload (client → server).
    pub upload_encoded_bytes: u64,
    /// Dense-equivalent bytes of the same upload payload.
    pub upload_raw_bytes: u64,
}

impl WireBill {
    /// Total encoded bytes billed, both directions.
    pub fn encoded_bytes(&self) -> u64 {
        self.download_encoded_bytes + self.upload_encoded_bytes
    }

    /// Total dense-equivalent bytes, both directions.
    pub fn raw_bytes(&self) -> u64 {
        self.download_raw_bytes + self.upload_raw_bytes
    }

    /// `raw / encoded` — how many times smaller the codec made the
    /// round trip (1.0 for an empty bill).
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes() == 0 {
            return 1.0;
        }
        self.raw_bytes() as f64 / self.encoded_bytes() as f64
    }

    /// Folds another bill into this one.
    pub fn add(&mut self, other: &WireBill) {
        self.download_encoded_bytes += other.download_encoded_bytes;
        self.download_raw_bytes += other.download_raw_bytes;
        self.upload_encoded_bytes += other.upload_encoded_bytes;
        self.upload_raw_bytes += other.upload_raw_bytes;
    }
}

/// One client's accounted cost for a single FL cycle, as recorded into a
/// [`RoundLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClientCycleCost {
    /// The client the entry belongs to.
    pub client_id: u64,
    /// Simulated user/kernel/allocation seconds of the cycle.
    pub time: TimeBreakdown,
    /// Secure-monitor crossings taken during the cycle.
    pub crossings: u64,
    /// Peak TEE memory of the cycle in bytes.
    pub tee_peak_bytes: usize,
    /// The cycle's wire-bytes bill (zero when the exchange never ran or
    /// predates the codec layer).
    pub wire: WireBill,
}

impl ClientCycleCost {
    /// A zero-cost entry for `client_id` — what a failed or unreachable
    /// client is billed so the round ledger still accounts it without
    /// charging compute that never reached the server.
    pub fn unbilled(client_id: u64) -> Self {
        ClientCycleCost {
            client_id,
            ..ClientCycleCost::default()
        }
    }
}

/// Per-round TEE accounting: one entry per participating client, kept
/// sorted by client id so the merged view is deterministic regardless of
/// the order workers finished in.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RoundLedger {
    entries: Vec<ClientCycleCost>,
}

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        RoundLedger::default()
    }

    /// Records one client's cycle cost, keeping entries ordered by client
    /// id. Re-recording a client id replaces its entry (a client trains at
    /// most once per round).
    pub fn record(&mut self, entry: ClientCycleCost) {
        match self
            .entries
            .binary_search_by_key(&entry.client_id, |e| e.client_id)
        {
            Ok(i) => self.entries[i] = entry,
            Err(i) => self.entries.insert(i, entry),
        }
    }

    /// Per-client entries, ordered by client id.
    pub fn entries(&self) -> &[ClientCycleCost] {
        &self.entries
    }

    /// The entry for one client, if it was billed this round.
    pub fn client(&self, client_id: u64) -> Option<&ClientCycleCost> {
        self.entries
            .binary_search_by_key(&client_id, |e| e.client_id)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Number of recorded clients.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of all clients' time breakdowns — the round's simulated
    /// device-time bill.
    pub fn total_time(&self) -> TimeBreakdown {
        let mut out = TimeBreakdown::default();
        for e in &self.entries {
            out.user_s += e.time.user_s;
            out.kernel_s += e.time.kernel_s;
            out.alloc_s += e.time.alloc_s;
        }
        out
    }

    /// The round's wall-clock lower bound under perfect client
    /// parallelism: the slowest participating client.
    pub fn critical_path_s(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.time.total_s())
            .fold(0.0, f64::max)
    }

    /// Total crossings across all clients.
    pub fn total_crossings(&self) -> u64 {
        self.entries.iter().map(|e| e.crossings).sum()
    }

    /// The largest single-client TEE footprint of the round.
    pub fn max_tee_peak_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.tee_peak_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Sum of all clients' wire bills — the round's byte totals in both
    /// the encoded (billable) and dense-equivalent columns.
    pub fn total_wire(&self) -> WireBill {
        let mut out = WireBill::default();
        for e in &self.entries {
            out.add(&e.wire);
        }
        out
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &RoundLedger) {
        for e in &other.entries {
            self.record(*e);
        }
    }

    /// Renders the ledger as a JSON object (hand-rolled: the vendored
    /// serde is a derive marker only), so per-round accounting can be
    /// exported by repro binaries.
    pub fn to_json(&self) -> String {
        let num = json_number;
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    r#"{{"client_id":{},"user_s":{},"kernel_s":{},"alloc_s":{},"crossings":{},"tee_peak_bytes":{},"wire_encoded_bytes":{},"wire_raw_bytes":{}}}"#,
                    e.client_id,
                    num(e.time.user_s),
                    num(e.time.kernel_s),
                    num(e.time.alloc_s),
                    e.crossings,
                    e.tee_peak_bytes,
                    e.wire.encoded_bytes(),
                    e.wire.raw_bytes(),
                )
            })
            .collect();
        let total = self.total_time();
        let wire = self.total_wire();
        format!(
            r#"{{"entries":[{}],"total_user_s":{},"total_kernel_s":{},"total_alloc_s":{},"total_crossings":{},"critical_path_s":{},"total_wire_encoded_bytes":{},"total_wire_raw_bytes":{},"compression_ratio":{}}}"#,
            entries.join(","),
            num(total.user_s),
            num(total.kernel_s),
            num(total.alloc_s),
            self.total_crossings(),
            num(self.critical_path_s()),
            wire.encoded_bytes(),
            wire.raw_bytes(),
            num(wire.compression_ratio()),
        )
    }
}

/// Renders an `f64` as a JSON number (`null` for non-finite values) —
/// the one rule every hand-rolled JSON export in the workspace shares,
/// so formats cannot drift apart.
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// A [`RoundLedger`] collector that concurrent engine workers can record
/// into while a round is in flight. Interior locking keeps recording
/// thread-safe; the id-sorted ledger makes the merged result independent
/// of worker completion order.
#[derive(Debug, Default)]
pub struct SharedLedger {
    inner: std::sync::Mutex<RoundLedger>,
}

impl SharedLedger {
    /// An empty shared ledger.
    pub fn new() -> Self {
        SharedLedger::default()
    }

    /// Thread-safe recording of one client's cycle cost.
    pub fn record(&self, entry: ClientCycleCost) {
        self.inner.lock().expect("ledger poisoned").record(entry);
    }

    /// Extracts the merged per-round ledger.
    pub fn into_round_ledger(self) -> RoundLedger {
        self.inner.into_inner().expect("ledger poisoned")
    }

    /// Snapshot of the ledger so far.
    pub fn snapshot(&self) -> RoundLedger {
        self.inner.lock().expect("ledger poisoned").clone()
    }
}

/// Accumulates simulated time for one training cycle.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    user_ns: f64,
    kernel_ns: f64,
    alloc_ns: f64,
    crossings: u64,
}

impl SimClock {
    /// A fresh, zeroed clock.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Charges `ops` MAC operations executed in the normal world.
    pub fn charge_normal_ops(&mut self, ops: f64, model: &CostModel) {
        self.user_ns += ops * model.ns_per_op_normal;
    }

    /// Charges `ops` MAC operations executed inside the enclave.
    pub fn charge_secure_ops(&mut self, ops: f64, model: &CostModel) {
        self.kernel_ns += ops * model.ns_per_op_secure;
    }

    /// Charges `n` secure-monitor crossings (kernel time).
    pub fn charge_crossings(&mut self, n: u64, model: &CostModel) {
        self.crossings += n;
        self.kernel_ns += n as f64 * model.ns_per_crossing;
    }

    /// Charges the provisioning of one protected layer of `params`
    /// parameters.
    pub fn charge_layer_alloc(&mut self, params: usize, model: &CostModel) {
        self.alloc_ns += params as f64 * model.alloc_ns_per_param + model.alloc_ns_fixed;
    }

    /// Crossings charged so far.
    pub fn crossings(&self) -> u64 {
        self.crossings
    }

    /// Snapshot of the accumulated times.
    pub fn breakdown(&self) -> TimeBreakdown {
        TimeBreakdown {
            user_s: self.user_ns / 1e9,
            kernel_s: self.kernel_ns / 1e9,
            alloc_s: self.alloc_ns / 1e9,
        }
    }

    /// Zeroes the clock.
    pub fn reset(&mut self) {
        *self = SimClock::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// LeNet-5 fwd+bwd MAC ops/image under the calibration convention.
    const LENET_OPS_PER_IMAGE: f64 = 2_995_200.0;
    const CYCLE_IMAGES: f64 = 320.0; // 10 batches of 32

    #[test]
    fn baseline_calibration_matches_table6() {
        // All layers in the normal world: user ≈ 2.191 s.
        let m = CostModel::raspberry_pi3();
        let mut clock = SimClock::new();
        clock.charge_normal_ops(LENET_OPS_PER_IMAGE * CYCLE_IMAGES, &m);
        let t = clock.breakdown();
        assert!(
            (t.user_s - 2.191).abs() < 0.01,
            "baseline user time {} != 2.191",
            t.user_s
        );
        assert_eq!(t.kernel_s, 0.0);
    }

    #[test]
    fn l5_allocation_dominates_like_table6() {
        // L5 has 76,900 params -> alloc ≈ 4.71 s (paper: 4.68 s).
        let m = CostModel::raspberry_pi3();
        let mut clock = SimClock::new();
        clock.charge_layer_alloc(76_900, &m);
        let t = clock.breakdown();
        assert!((t.alloc_s - 4.68).abs() < 0.1, "alloc {}", t.alloc_s);
        // L2 has 3,612 params -> alloc ≈ 0.32 s (paper: 0.34 s).
        let mut clock = SimClock::new();
        clock.charge_layer_alloc(3_612, &m);
        let t = clock.breakdown();
        assert!((t.alloc_s - 0.34).abs() < 0.05, "alloc {}", t.alloc_s);
    }

    #[test]
    fn overhead_formula_matches_paper_annotation() {
        // Table 6's L5 row: 2.044 + 0.187 + 4.68 vs baseline 2.212 => 212%.
        let baseline = TimeBreakdown {
            user_s: 2.191,
            kernel_s: 0.021,
            alloc_s: 0.0,
        };
        let l5 = TimeBreakdown {
            user_s: 2.044,
            kernel_s: 0.187,
            alloc_s: 4.68,
        };
        let ovh = l5.overhead_vs(&baseline);
        assert!((ovh - 212.0).abs() < 2.0, "overhead {ovh}");
    }

    #[test]
    fn crossings_accumulate_kernel_time() {
        let m = CostModel::raspberry_pi3();
        let mut clock = SimClock::new();
        clock.charge_crossings(20, &m);
        assert_eq!(clock.crossings(), 20);
        let t = clock.breakdown();
        assert!((t.kernel_s - 0.064).abs() < 1e-9);
    }

    #[test]
    fn weighted_average_is_convex() {
        let a = TimeBreakdown {
            user_s: 1.0,
            kernel_s: 0.0,
            alloc_s: 0.0,
        };
        let b = TimeBreakdown {
            user_s: 3.0,
            kernel_s: 2.0,
            alloc_s: 4.0,
        };
        let avg = TimeBreakdown::weighted_average(&[(a, 1.0), (b, 3.0)]);
        assert!((avg.user_s - 2.5).abs() < 1e-9);
        assert!((avg.kernel_s - 1.5).abs() < 1e-9);
        assert!((avg.alloc_s - 3.0).abs() < 1e-9);
        // Degenerate weights.
        let zero = TimeBreakdown::weighted_average(&[(a, 0.0)]);
        assert_eq!(zero, TimeBreakdown::default());
        assert_eq!(
            TimeBreakdown::weighted_average(&[]),
            TimeBreakdown::default()
        );
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        let mut clock = SimClock::new();
        clock.charge_normal_ops(1e9, &m);
        clock.charge_secure_ops(1e9, &m);
        clock.charge_crossings(100, &m);
        clock.charge_layer_alloc(100_000, &m);
        assert_eq!(clock.breakdown().total_s(), 0.0);
    }

    #[test]
    fn ledger_orders_and_aggregates_clients() {
        let mut ledger = RoundLedger::new();
        let t = |u: f64| TimeBreakdown {
            user_s: u,
            kernel_s: u / 10.0,
            alloc_s: 0.0,
        };
        // Record out of order — entries come back sorted by client id.
        for (id, u, x, peak) in [
            (7u64, 3.0, 4u64, 100usize),
            (2, 1.0, 2, 300),
            (5, 2.0, 6, 200),
        ] {
            ledger.record(ClientCycleCost {
                client_id: id,
                time: t(u),
                crossings: x,
                tee_peak_bytes: peak,
                wire: WireBill::default(),
            });
        }
        let ids: Vec<u64> = ledger.entries().iter().map(|e| e.client_id).collect();
        assert_eq!(ids, vec![2, 5, 7]);
        assert!((ledger.total_time().user_s - 6.0).abs() < 1e-9);
        assert_eq!(ledger.total_crossings(), 12);
        assert_eq!(ledger.max_tee_peak_bytes(), 300);
        assert!((ledger.critical_path_s() - 3.3).abs() < 1e-9);
        // Re-recording replaces, never duplicates.
        ledger.record(ClientCycleCost {
            client_id: 5,
            time: t(9.0),
            crossings: 1,
            tee_peak_bytes: 1,
            wire: WireBill::default(),
        });
        assert_eq!(ledger.len(), 3);
        assert_eq!(ledger.total_crossings(), 7);
    }

    #[test]
    fn shared_ledger_is_deterministic_under_concurrency() {
        let shared = std::sync::Arc::new(SharedLedger::new());
        std::thread::scope(|s| {
            for id in 0..8u64 {
                let shared = shared.clone();
                s.spawn(move || {
                    shared.record(ClientCycleCost {
                        client_id: id,
                        time: TimeBreakdown {
                            user_s: id as f64,
                            kernel_s: 0.0,
                            alloc_s: 0.0,
                        },
                        crossings: id,
                        tee_peak_bytes: id as usize,
                        wire: WireBill::default(),
                    });
                });
            }
        });
        let ledger = std::sync::Arc::try_unwrap(shared)
            .expect("all workers joined")
            .into_round_ledger();
        let ids: Vec<u64> = ledger.entries().iter().map(|e| e.client_id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
        assert_eq!(ledger.total_crossings(), 28);
    }

    #[test]
    fn unbilled_entries_cost_nothing_but_are_accounted() {
        let mut ledger = RoundLedger::new();
        ledger.record(ClientCycleCost::unbilled(9));
        ledger.record(ClientCycleCost {
            client_id: 4,
            time: TimeBreakdown {
                user_s: 1.0,
                kernel_s: 0.5,
                alloc_s: 0.0,
            },
            crossings: 3,
            tee_peak_bytes: 64,
            wire: WireBill::default(),
        });
        assert_eq!(ledger.len(), 2);
        let failed = ledger.client(9).expect("accounted");
        assert_eq!(failed.crossings, 0);
        assert_eq!(failed.time.total_s(), 0.0);
        assert_eq!(failed.tee_peak_bytes, 0);
        assert!(ledger.client(4).expect("billed").time.total_s() > 0.0);
        assert!(ledger.client(7).is_none());
        assert_eq!(ledger.total_crossings(), 3);
    }

    #[test]
    fn ledger_merge_folds_entries() {
        let entry = |id: u64| ClientCycleCost {
            client_id: id,
            time: TimeBreakdown::default(),
            crossings: 1,
            tee_peak_bytes: 0,
            wire: WireBill::default(),
        };
        let mut a = RoundLedger::new();
        a.record(entry(1));
        let mut b = RoundLedger::new();
        b.record(entry(3));
        b.record(entry(1));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total_crossings(), 2);
    }

    #[test]
    fn wire_bill_totals_and_ratio() {
        let mut ledger = RoundLedger::new();
        for (id, enc, raw) in [(1u64, 100u64, 400u64), (2, 300, 800)] {
            ledger.record(ClientCycleCost {
                client_id: id,
                wire: WireBill {
                    download_encoded_bytes: enc,
                    download_raw_bytes: raw,
                    upload_encoded_bytes: enc,
                    upload_raw_bytes: raw,
                },
                ..ClientCycleCost::default()
            });
        }
        let wire = ledger.total_wire();
        assert_eq!(wire.encoded_bytes(), 800);
        assert_eq!(wire.raw_bytes(), 2400);
        assert!((wire.compression_ratio() - 3.0).abs() < 1e-9);
        assert_eq!(WireBill::default().compression_ratio(), 1.0);
        let json = ledger.to_json();
        assert!(json.contains(r#""total_wire_encoded_bytes":800"#), "{json}");
        assert!(json.contains(r#""wire_raw_bytes":800"#), "{json}");
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = CostModel::raspberry_pi3();
        let mut clock = SimClock::new();
        clock.charge_crossings(5, &m);
        clock.reset();
        assert_eq!(clock.crossings(), 0);
        assert_eq!(clock.breakdown().total_s(), 0.0);
    }
}
