//! ChaCha20 stream cipher (RFC 8439).

/// Key length in bytes.
pub const KEY_LEN: usize = 32;

/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    // Constants "expand 32-byte k".
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR keystream; the operation is an
/// involution).
///
/// `counter` is the initial block counter (RFC 8439 uses 1 for payload when
/// block 0 is reserved for a MAC key; the caller chooses).
///
/// # Example
///
/// ```
/// use gradsec_tee::crypto::chacha20::{xor_stream, KEY_LEN, NONCE_LEN};
///
/// let key = [7u8; KEY_LEN];
/// let nonce = [9u8; NONCE_LEN];
/// let mut msg = *b"attack at dawn";
/// xor_stream(&key, 1, &nonce, &mut msg);
/// assert_ne!(&msg, b"attack at dawn");
/// xor_stream(&key, 1, &nonce, &mut msg);
/// assert_eq!(&msg, b"attack at dawn");
/// ```
pub fn xor_stream(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    let mut ctr = counter;
    for chunk in data.chunks_mut(64) {
        let ks = block(key, ctr, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        ctr = ctr.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 §2.3.2.
        let mut key = [0u8; KEY_LEN];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce_bytes = hex_to_bytes("000000090000004a00000000");
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&nonce_bytes);
        let ks = block(&key, 1, &nonce);
        let expected = hex_to_bytes(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(ks.to_vec(), expected);
    }

    #[test]
    fn rfc8439_encryption_test_vector() {
        // RFC 8439 §2.4.2 (sunscreen plaintext, counter 1).
        let mut key = [0u8; KEY_LEN];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce_bytes = hex_to_bytes("000000000000004a00000000");
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&nonce_bytes);
        let mut data = b"Ladies and Gentlemen of the class of '99: \
If I could offer you only one tip for the future, sunscreen would be it."
            .to_vec();
        xor_stream(&key, 1, &nonce, &mut data);
        let expected = hex_to_bytes(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn xor_is_involution_across_block_boundaries() {
        let key = [0x42u8; KEY_LEN];
        let nonce = [0x24u8; NONCE_LEN];
        let original: Vec<u8> = (0..200).map(|i| (i * 7) as u8).collect();
        let mut data = original.clone();
        xor_stream(&key, 5, &nonce, &mut data);
        assert_ne!(data, original);
        xor_stream(&key, 5, &nonce, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn nonce_and_key_sensitivity() {
        let key = [1u8; KEY_LEN];
        let nonce = [2u8; NONCE_LEN];
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        xor_stream(&key, 0, &nonce, &mut a);
        xor_stream(&key, 0, &[3u8; NONCE_LEN], &mut b);
        assert_ne!(a, b);
        let mut c = vec![0u8; 32];
        xor_stream(&[9u8; KEY_LEN], 0, &nonce, &mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_data_is_noop() {
        let key = [1u8; KEY_LEN];
        let nonce = [2u8; NONCE_LEN];
        let mut data: Vec<u8> = vec![];
        xor_stream(&key, 0, &nonce, &mut data);
        assert!(data.is_empty());
    }
}
