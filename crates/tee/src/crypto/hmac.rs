//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).

use crate::crypto::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, data)`.
///
/// Keys longer than the 64-byte block are hashed first, per the spec.
///
/// # Example
///
/// ```
/// use gradsec_tee::crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        k[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Verifies a tag in constant time.
pub fn hmac_verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
    crate::crypto::ct_eq(&hmac_sha256(key, data), tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_long_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        // 131-byte key forces the hash-the-key path.
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(hmac_verify(b"k", b"m", &tag));
        assert!(!hmac_verify(b"k", b"m2", &tag));
        assert!(!hmac_verify(b"k2", b"m", &tag));
        assert!(!hmac_verify(b"k", b"m", &tag[..31]));
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"a", b"m"), hmac_sha256(b"b", b"m"));
    }
}
