//! HKDF (RFC 5869) — extract-and-expand key derivation over HMAC-SHA-256.
//!
//! OP-TEE derives each TA's storage key (TSK) from the device Secure
//! Storage Key (SSK) and the TA's UUID (paper §7.3); [`derive_key`] is that
//! operation in this simulator.

use crate::crypto::hmac::hmac_sha256;
use crate::crypto::sha256::DIGEST_LEN;

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: grows `prk` into `len` bytes of output keyed by `info`.
///
/// # Panics
///
/// Panics when `len > 255 * 32` (the RFC 5869 bound).
pub fn expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "hkdf output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut msg = t.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        t = hmac_sha256(prk, &msg).to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&t[..take]);
        counter = counter.wrapping_add(1);
    }
    out
}

/// One-call HKDF: derive a `len`-byte key from `ikm` with `salt` and
/// `info` labels.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, len)
}

/// Derives a 32-byte subkey from a parent key and a domain-separation
/// label — the SSK→TSK and TSK→FEK derivations of the paper's secure
/// storage (§7.3).
pub fn derive_key(parent: &[u8], label: &[u8]) -> [u8; DIGEST_LEN] {
    let v = hkdf(b"gradsec-tee-storage", parent, label, DIGEST_LEN);
    let mut out = [0u8; DIGEST_LEN];
    out.copy_from_slice(&v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = hex_to_bytes("000102030405060708090a0b0c");
        let info = hex_to_bytes("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case3_empty_salt_info() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn derive_key_is_label_separated() {
        let parent = b"device-root-key";
        let a = derive_key(parent, b"ta-uuid-1");
        let b = derive_key(parent, b"ta-uuid-2");
        assert_ne!(a, b);
        // Deterministic.
        assert_eq!(a, derive_key(parent, b"ta-uuid-1"));
    }

    #[test]
    fn expand_lengths() {
        let prk = extract(b"s", b"k");
        assert_eq!(expand(&prk, b"i", 0).len(), 0);
        assert_eq!(expand(&prk, b"i", 31).len(), 31);
        assert_eq!(expand(&prk, b"i", 33).len(), 33);
        assert_eq!(expand(&prk, b"i", 100).len(), 100);
        // Prefix property: shorter outputs are prefixes of longer ones.
        let long = expand(&prk, b"i", 64);
        let short = expand(&prk, b"i", 32);
        assert_eq!(&long[..32], &short[..]);
    }

    #[test]
    #[should_panic(expected = "hkdf output too long")]
    fn expand_rejects_oversize() {
        let prk = extract(b"s", b"k");
        let _ = expand(&prk, b"i", 255 * 32 + 1);
    }
}
