//! Cryptographic primitives implemented from scratch.
//!
//! OP-TEE's secure storage and trusted channels rest on symmetric crypto;
//! since the reproduction may not pull external crypto crates, the needed
//! primitives are implemented here and validated against published test
//! vectors:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256,
//! * [`hmac`] — RFC 2104 HMAC-SHA-256,
//! * [`chacha20`] — RFC 8439 ChaCha20 stream cipher,
//! * [`kdf`] — RFC 5869 HKDF (extract-and-expand).
//!
//! These are *simulation-grade* implementations: correct and tested, but
//! not hardened against side channels (the simulated enclave has no
//! adversarial co-residency).

pub mod chacha20;
pub mod hmac;
pub mod kdf;
pub mod sha256;

/// Constant-time byte-slice equality (length leaks, contents do not).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (&x, &y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
