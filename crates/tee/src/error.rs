use std::fmt;

/// Errors produced by the TrustZone simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// The secure-memory pool cannot satisfy an allocation — the paper's
    /// central constraint (§3.3: "TA can only use few MBs of secure
    /// memory").
    OutOfSecureMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes currently free.
        available: usize,
        /// Pool budget.
        budget: usize,
    },
    /// An allocation handle was freed twice or never existed.
    BadHandle {
        /// The offending handle id.
        handle: u64,
    },
    /// A secure-world operation was attempted from the normal world (or
    /// vice versa).
    WrongWorld {
        /// Human-readable operation name.
        op: &'static str,
        /// The world the caller was in.
        was: crate::world::World,
    },
    /// Authentication/integrity check failed (tampered ciphertext, bad MAC,
    /// bad attestation signature).
    IntegrityViolation {
        /// What was being verified.
        context: &'static str,
    },
    /// No object stored under this identifier.
    NotFound {
        /// The object identifier.
        id: String,
    },
    /// A session or TA identifier is unknown.
    NoSuchSession {
        /// The session id.
        session: u64,
    },
    /// The trusted application rejected a command.
    TaError {
        /// TA-specific error message.
        reason: String,
    },
    /// A trusted I/O channel protocol violation (replay, reorder,
    /// truncation).
    ChannelViolation {
        /// Human-readable description.
        reason: String,
    },
    /// Invalid configuration value.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for TeeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeeError::OutOfSecureMemory {
                requested,
                available,
                budget,
            } => write!(
                f,
                "out of secure memory: requested {requested} B, {available} B free of {budget} B budget"
            ),
            TeeError::BadHandle { handle } => write!(f, "bad allocation handle {handle}"),
            TeeError::WrongWorld { op, was } => {
                write!(f, "operation {op} not permitted from the {was} world")
            }
            TeeError::IntegrityViolation { context } => {
                write!(f, "integrity violation in {context}")
            }
            TeeError::NotFound { id } => write!(f, "no stored object {id:?}"),
            TeeError::NoSuchSession { session } => write!(f, "no such session {session}"),
            TeeError::TaError { reason } => write!(f, "trusted application error: {reason}"),
            TeeError::ChannelViolation { reason } => {
                write!(f, "trusted channel violation: {reason}")
            }
            TeeError::BadConfig { reason } => write!(f, "bad config: {reason}"),
        }
    }
}

impl std::error::Error for TeeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_oom() {
        let e = TeeError::OutOfSecureMemory {
            requested: 100,
            available: 50,
            budget: 200,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("50"));
        assert!(s.contains("200"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TeeError>();
    }
}
