//! # gradsec-tee
//!
//! A software simulator of ARM TrustZone with an OP-TEE-like trusted OS —
//! the execution substrate of the GradSec reproduction (Middleware '22).
//!
//! The paper deploys GradSec on a Raspberry Pi 3B+ with real TrustZone.
//! This crate reproduces the *architecture* that the paper's security and
//! performance arguments rest on:
//!
//! * [`world`] — the two processor worlds (§3.3, Figure 1),
//! * [`monitor`] — the secure monitor (`SMC`) that switches worlds, with
//!   full crossing accounting,
//! * [`memory`] — the bounded secure-memory pool (the paper's 3–5 MB limit)
//!   with live/peak tracking and out-of-memory errors,
//! * [`ta`] — GlobalPlatform-style trusted applications and sessions,
//! * [`crypto`] — SHA-256, HMAC, ChaCha20 and HKDF implemented from
//!   scratch (no external crypto dependencies),
//! * [`storage`] — OP-TEE secure storage with the paper's §7.3 key
//!   hierarchy (SSK → TSK → FEK), encrypt-then-MAC and atomic updates,
//! * [`tiop`] — the trusted I/O path for provisioning protected layer
//!   weights (§7.3),
//! * [`attestation`] — remote attestation of TA measurements (§7.3),
//! * [`cost`] — the deterministic cost model calibrated against the
//!   paper's Table 6 (user/kernel/allocation time, TEE memory).
//!
//! # Example
//!
//! ```
//! use gradsec_tee::memory::SecureMemory;
//!
//! # fn main() -> Result<(), gradsec_tee::TeeError> {
//! // A Pi-class TrustZone carveout: 4 MiB of secure memory.
//! let mut mem = SecureMemory::with_budget(4 * 1024 * 1024);
//! let buf = mem.alloc(1024)?;
//! assert_eq!(mem.in_use(), 1024);
//! mem.free(buf)?;
//! assert_eq!(mem.in_use(), 0);
//! assert_eq!(mem.peak(), 1024);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod cost;
pub mod crypto;
mod error;
pub mod memory;
pub mod monitor;
pub mod storage;
pub mod ta;
pub mod tiop;
pub mod world;

pub use error::TeeError;

/// Crate-wide result alias using [`TeeError`].
pub type Result<T> = std::result::Result<T, TeeError>;
