//! Bounded secure-memory pool.
//!
//! TrustZone secure memory is a scarce, fixed-size carveout — the paper
//! cites 3–5 MB as typical (§3.3) and treats the footprint of protected
//! layers as a first-class cost (Table 6's "TEE Memory Usage" column).
//! This pool enforces the budget, tracks live and peak usage, and fails
//! allocations exactly the way a real TA hits `TEE_ERROR_OUT_OF_MEMORY`.

use crate::{Result, TeeError};

/// Default pool budget: 4 MiB, the middle of the paper's 3–5 MB range.
pub const DEFAULT_BUDGET: usize = 4 * 1024 * 1024;

/// Handle to one live secure allocation.
///
/// Handles are move-only receipts; freeing consumes the handle, which makes
/// double-frees a compile-time error in straight-line code and a checked
/// runtime error otherwise.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct SecureAlloc {
    id: u64,
    bytes: usize,
}

impl SecureAlloc {
    /// Size of this allocation in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Opaque handle id (for logging).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// A fixed-budget secure memory pool with live/peak accounting.
#[derive(Debug)]
pub struct SecureMemory {
    budget: usize,
    in_use: usize,
    peak: usize,
    next_id: u64,
    live: Vec<(u64, usize)>,
    alloc_count: u64,
    failed_allocs: u64,
}

impl SecureMemory {
    /// Creates a pool with the given byte budget.
    pub fn with_budget(budget: usize) -> Self {
        SecureMemory {
            budget,
            in_use: 0,
            peak: 0,
            next_id: 1,
            live: Vec::new(),
            alloc_count: 0,
            failed_allocs: 0,
        }
    }

    /// Creates a pool with the paper-typical 4 MiB budget.
    pub fn new() -> Self {
        SecureMemory::with_budget(DEFAULT_BUDGET)
    }

    /// The pool budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Live (currently allocated) bytes.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// High-water mark in bytes — the paper's "TEE Memory Usage (at exec)".
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Free bytes remaining.
    pub fn available(&self) -> usize {
        self.budget - self.in_use
    }

    /// Number of successful allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }

    /// Number of allocations rejected for lack of budget.
    pub fn failed_allocs(&self) -> u64 {
        self.failed_allocs
    }

    /// Allocates `bytes` of secure memory.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::OutOfSecureMemory`] when the budget cannot cover
    /// the request — the same failure a real enclave hits when asked to
    /// protect more layers than the carveout can hold.
    pub fn alloc(&mut self, bytes: usize) -> Result<SecureAlloc> {
        if bytes > self.available() {
            self.failed_allocs += 1;
            return Err(TeeError::OutOfSecureMemory {
                requested: bytes,
                available: self.available(),
                budget: self.budget,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        self.live.push((id, bytes));
        self.alloc_count += 1;
        Ok(SecureAlloc { id, bytes })
    }

    /// Releases an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadHandle`] when the handle does not belong to
    /// this pool (e.g. forged or already freed through another pool).
    pub fn free(&mut self, alloc: SecureAlloc) -> Result<()> {
        match self.live.iter().position(|&(id, _)| id == alloc.id) {
            Some(pos) => {
                let (_, bytes) = self.live.swap_remove(pos);
                self.in_use -= bytes;
                Ok(())
            }
            None => Err(TeeError::BadHandle { handle: alloc.id }),
        }
    }

    /// Frees every live allocation (end-of-cycle teardown) and returns the
    /// number of allocations released.
    pub fn free_all(&mut self) -> usize {
        let n = self.live.len();
        self.live.clear();
        self.in_use = 0;
        n
    }

    /// Resets the peak watermark to the current live usage (start of a new
    /// measurement window, e.g. a new FL cycle).
    pub fn reset_peak(&mut self) {
        self.peak = self.in_use;
    }
}

impl Default for SecureMemory {
    fn default() -> Self {
        SecureMemory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let mut m = SecureMemory::with_budget(100);
        let a = m.alloc(40).unwrap();
        let b = m.alloc(30).unwrap();
        assert_eq!(m.in_use(), 70);
        assert_eq!(m.available(), 30);
        assert_eq!(m.peak(), 70);
        m.free(a).unwrap();
        assert_eq!(m.in_use(), 30);
        assert_eq!(m.peak(), 70, "peak survives frees");
        m.free(b).unwrap();
        assert_eq!(m.in_use(), 0);
        assert_eq!(m.alloc_count(), 2);
    }

    #[test]
    fn oom_is_reported_with_context() {
        let mut m = SecureMemory::with_budget(50);
        let _a = m.alloc(40).unwrap();
        let err = m.alloc(20).unwrap_err();
        assert_eq!(
            err,
            TeeError::OutOfSecureMemory {
                requested: 20,
                available: 10,
                budget: 50
            }
        );
        assert_eq!(m.failed_allocs(), 1);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut m = SecureMemory::with_budget(64);
        let a = m.alloc(64).unwrap();
        assert_eq!(m.available(), 0);
        m.free(a).unwrap();
        assert_eq!(m.available(), 64);
    }

    #[test]
    fn foreign_handle_rejected() {
        let mut m1 = SecureMemory::with_budget(100);
        let mut m2 = SecureMemory::with_budget(100);
        let a = m1.alloc(10).unwrap();
        let err = m2.free(a).unwrap_err();
        assert!(matches!(err, TeeError::BadHandle { .. }));
    }

    #[test]
    fn free_all_and_reset_peak() {
        let mut m = SecureMemory::with_budget(100);
        let _a = m.alloc(60).unwrap();
        let _b = m.alloc(20).unwrap();
        assert_eq!(m.free_all(), 2);
        assert_eq!(m.in_use(), 0);
        assert_eq!(m.peak(), 80);
        m.reset_peak();
        assert_eq!(m.peak(), 0);
    }

    #[test]
    fn zero_sized_alloc_is_fine() {
        let mut m = SecureMemory::with_budget(10);
        let a = m.alloc(0).unwrap();
        assert_eq!(m.in_use(), 0);
        m.free(a).unwrap();
    }

    #[test]
    fn default_budget_matches_paper_range() {
        let m = SecureMemory::new();
        let mb = m.budget() as f64 / (1024.0 * 1024.0);
        assert!((3.0..=5.0).contains(&mb));
    }
}
