//! Secure monitor — the `SMC` gateway between worlds (paper Figure 1).
//!
//! Every transition between the Rich Execution Environment and the TEE
//! goes through the secure monitor. World crossings are *the* per-batch
//! CPU cost of sheltering layers (each protected slice costs an entry and
//! an exit per batch), so the monitor counts them precisely; the
//! [`crate::cost::CostModel`] later converts counts into kernel time.

use crate::world::World;
use crate::{Result, TeeError};

/// The secure monitor: tracks the current world and counts crossings.
#[derive(Debug, Clone)]
pub struct SecureMonitor {
    world: World,
    to_secure: u64,
    to_normal: u64,
}

impl SecureMonitor {
    /// Creates a monitor starting in the normal world.
    pub fn new() -> Self {
        SecureMonitor {
            world: World::Normal,
            to_secure: 0,
            to_normal: 0,
        }
    }

    /// The world currently executing.
    pub fn world(&self) -> World {
        self.world
    }

    /// Number of normal→secure transitions taken.
    pub fn entries(&self) -> u64 {
        self.to_secure
    }

    /// Number of secure→normal transitions taken.
    pub fn exits(&self) -> u64 {
        self.to_normal
    }

    /// Total crossings in either direction.
    pub fn crossings(&self) -> u64 {
        self.to_secure + self.to_normal
    }

    /// Issues an `SMC` into the secure world.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::WrongWorld`] when already in the secure world —
    /// a protocol bug in the caller, not a legal no-op, because a real
    /// monitor trap from the secure world has different semantics.
    pub fn smc_enter(&mut self) -> Result<()> {
        if self.world.is_secure() {
            return Err(TeeError::WrongWorld {
                op: "smc_enter",
                was: self.world,
            });
        }
        self.world = World::Secure;
        self.to_secure += 1;
        Ok(())
    }

    /// Returns to the normal world.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::WrongWorld`] when already in the normal world.
    pub fn smc_exit(&mut self) -> Result<()> {
        if !self.world.is_secure() {
            return Err(TeeError::WrongWorld {
                op: "smc_exit",
                was: self.world,
            });
        }
        self.world = World::Normal;
        self.to_normal += 1;
        Ok(())
    }

    /// Ensures the monitor is in `target`, crossing if needed. Returns
    /// `true` when a crossing was taken.
    pub fn ensure_world(&mut self, target: World) -> bool {
        if self.world == target {
            return false;
        }
        match target {
            World::Secure => self.smc_enter().expect("checked world"),
            World::Normal => self.smc_exit().expect("checked world"),
        }
        true
    }

    /// Runs `f` inside the secure world, entering/exiting as required, and
    /// restores the previous world afterwards.
    ///
    /// # Errors
    ///
    /// Propagates the closure's error.
    pub fn with_secure<T, F>(&mut self, f: F) -> Result<T>
    where
        F: FnOnce() -> Result<T>,
    {
        let entered = self.ensure_world(World::Secure);
        let out = f();
        if entered {
            self.ensure_world(World::Normal);
        }
        out
    }

    /// Zeroes the crossing counters (start of a measurement window).
    pub fn reset_counters(&mut self) {
        self.to_secure = 0;
        self.to_normal = 0;
    }

    /// Folds another monitor's crossing counters into this one — used by
    /// the parallel round engine to merge per-client monitors into the
    /// round's accounting. The world state is not touched: merging is a
    /// bookkeeping operation, not a world transition.
    pub fn merge_counters(&mut self, other: &SecureMonitor) {
        self.to_secure += other.to_secure;
        self.to_normal += other.to_normal;
    }
}

impl Default for SecureMonitor {
    fn default() -> Self {
        SecureMonitor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_counts() {
        let mut m = SecureMonitor::new();
        assert_eq!(m.world(), World::Normal);
        m.smc_enter().unwrap();
        assert_eq!(m.world(), World::Secure);
        m.smc_exit().unwrap();
        assert_eq!(m.crossings(), 2);
        assert_eq!(m.entries(), 1);
        assert_eq!(m.exits(), 1);
    }

    #[test]
    fn double_enter_is_a_protocol_error() {
        let mut m = SecureMonitor::new();
        m.smc_enter().unwrap();
        assert!(matches!(m.smc_enter(), Err(TeeError::WrongWorld { .. })));
        m.smc_exit().unwrap();
        assert!(matches!(m.smc_exit(), Err(TeeError::WrongWorld { .. })));
    }

    #[test]
    fn ensure_world_is_idempotent() {
        let mut m = SecureMonitor::new();
        assert!(!m.ensure_world(World::Normal));
        assert!(m.ensure_world(World::Secure));
        assert!(!m.ensure_world(World::Secure));
        assert_eq!(m.crossings(), 1);
    }

    #[test]
    fn with_secure_restores_world() {
        let mut m = SecureMonitor::new();
        let out: i32 = m.with_secure(|| Ok(7)).unwrap();
        assert_eq!(out, 7);
        assert_eq!(m.world(), World::Normal);
        assert_eq!(m.crossings(), 2);
        // From inside the secure world, no extra crossings.
        m.smc_enter().unwrap();
        m.with_secure::<(), _>(|| Ok(())).unwrap();
        assert_eq!(m.world(), World::Secure);
        assert_eq!(m.crossings(), 3);
    }

    #[test]
    fn with_secure_restores_on_error() {
        let mut m = SecureMonitor::new();
        let r: Result<()> = m.with_secure(|| {
            Err(TeeError::TaError {
                reason: "boom".to_owned(),
            })
        });
        assert!(r.is_err());
        assert_eq!(m.world(), World::Normal);
    }

    #[test]
    fn merge_counters_sums_without_world_change() {
        let mut a = SecureMonitor::new();
        a.smc_enter().unwrap();
        a.smc_exit().unwrap();
        let mut b = SecureMonitor::new();
        b.smc_enter().unwrap();
        a.merge_counters(&b);
        assert_eq!(a.entries(), 2);
        assert_eq!(a.exits(), 1);
        assert_eq!(a.world(), World::Normal, "merge must not switch worlds");
    }

    #[test]
    fn reset_counters() {
        let mut m = SecureMonitor::new();
        m.smc_enter().unwrap();
        m.smc_exit().unwrap();
        m.reset_counters();
        assert_eq!(m.crossings(), 0);
    }
}
