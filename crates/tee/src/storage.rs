//! OP-TEE secure storage with the paper's key hierarchy (§7.3).
//!
//! > "It leverages a randomly generated File Encryption Key (FEK) for
//! > encrypting and decrypting the data stored in block file. The FEK
//! > itself is encrypted/decrypted by the Trusted Application Storage Key
//! > (TSK) which is derived from the per-device Secure Storage Key (SSK)
//! > and the TA's identifier (UUID)."
//!
//! Implemented exactly: `TSK = HKDF(SSK, UUID)`, a fresh random FEK per
//! object generation, FEK wrapped under the TSK, payload encrypted with
//! ChaCha20 under the FEK, and an encrypt-then-MAC tag (HMAC-SHA-256 under
//! a MAC subkey of the TSK) covering the header and ciphertext. Updates
//! are atomic: a failed write leaves the previous object version intact.
//!
//! GradSec uses this to park the FL model and client data between cycles
//! (paper §5, "Secure local training").

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::crypto::chacha20::{xor_stream, KEY_LEN, NONCE_LEN};
use crate::crypto::hmac::{hmac_sha256, hmac_verify};
use crate::crypto::kdf::derive_key;
use crate::ta::Uuid;
use crate::{Result, TeeError};

/// One encrypted object at rest (what the REE filesystem would hold:
/// opaque bytes the normal world can store but not read or undetectably
/// modify).
#[derive(Debug, Clone)]
struct StoredObject {
    version: u64,
    nonce: [u8; NONCE_LEN],
    wrapped_fek: [u8; KEY_LEN],
    ciphertext: Vec<u8>,
    mac: [u8; 32],
}

/// The secure storage service of the trusted OS.
///
/// # Example
///
/// ```
/// use gradsec_tee::storage::SecureStorage;
/// use gradsec_tee::ta::Uuid;
///
/// # fn main() -> Result<(), gradsec_tee::TeeError> {
/// let mut store = SecureStorage::new(b"device-unique-secret", 7);
/// let ta = Uuid::from_name("gradsec-ta");
/// store.put(ta, "model", b"weights-bytes")?;
/// assert_eq!(store.get(ta, "model")?, b"weights-bytes");
/// # Ok(())
/// # }
/// ```
pub struct SecureStorage {
    ssk: [u8; 32],
    objects: HashMap<(Uuid, String), StoredObject>,
    rng: StdRng,
}

impl std::fmt::Debug for SecureStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureStorage")
            .field("objects", &self.objects.len())
            .finish()
    }
}

fn header_bytes(ta: Uuid, name: &str, version: u64, nonce: &[u8; NONCE_LEN]) -> Vec<u8> {
    let mut h = Vec::with_capacity(16 + name.len() + 8 + NONCE_LEN);
    h.extend_from_slice(ta.as_bytes());
    h.extend_from_slice(name.as_bytes());
    h.extend_from_slice(&version.to_le_bytes());
    h.extend_from_slice(nonce);
    h
}

impl SecureStorage {
    /// Creates a storage instance bound to a device secret (from which the
    /// SSK derives) and a simulation RNG seed for FEK generation.
    pub fn new(device_secret: &[u8], seed: u64) -> Self {
        SecureStorage {
            ssk: derive_key(device_secret, b"ssk"),
            objects: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn tsk(&self, ta: Uuid) -> [u8; 32] {
        // TSK = KDF(SSK, UUID) — paper §7.3.
        derive_key(&self.ssk, ta.as_bytes())
    }

    /// Writes (or atomically replaces) an object.
    ///
    /// A fresh FEK is generated per write, so re-encryptions never reuse a
    /// (key, nonce) pair.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` because real storage can fail and
    /// callers should already handle it.
    pub fn put(&mut self, ta: Uuid, name: &str, data: &[u8]) -> Result<()> {
        let version = self
            .objects
            .get(&(ta, name.to_owned()))
            .map(|o| o.version + 1)
            .unwrap_or(0);
        let mut fek = [0u8; KEY_LEN];
        self.rng.fill(&mut fek[..]);
        let mut nonce = [0u8; NONCE_LEN];
        self.rng.fill(&mut nonce[..]);
        let tsk = self.tsk(ta);
        let enc_key = derive_key(&tsk, b"enc");
        let mac_key = derive_key(&tsk, b"mac");
        // Encrypt payload under the FEK (counter 1; block 0 unused).
        let mut ciphertext = data.to_vec();
        xor_stream(&fek, 1, &nonce, &mut ciphertext);
        // Wrap the FEK under the TSK encryption subkey (counter 0).
        let mut wrapped_fek = fek;
        xor_stream(&enc_key, 0, &nonce, &mut wrapped_fek);
        // Encrypt-then-MAC over header ‖ wrapped FEK ‖ ciphertext.
        let mut mac_input = header_bytes(ta, name, version, &nonce);
        mac_input.extend_from_slice(&wrapped_fek);
        mac_input.extend_from_slice(&ciphertext);
        let mac = hmac_sha256(&mac_key, &mac_input);
        // Atomic replace: the object is fully constructed before insertion.
        self.objects.insert(
            (ta, name.to_owned()),
            StoredObject {
                version,
                nonce,
                wrapped_fek,
                ciphertext,
                mac,
            },
        );
        Ok(())
    }

    /// Reads and authenticates an object.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NotFound`] for unknown names and
    /// [`TeeError::IntegrityViolation`] when the MAC does not verify
    /// (tampered at rest).
    pub fn get(&self, ta: Uuid, name: &str) -> Result<Vec<u8>> {
        let obj = self
            .objects
            .get(&(ta, name.to_owned()))
            .ok_or_else(|| TeeError::NotFound {
                id: format!("{ta}/{name}"),
            })?;
        let tsk = self.tsk(ta);
        let enc_key = derive_key(&tsk, b"enc");
        let mac_key = derive_key(&tsk, b"mac");
        let mut mac_input = header_bytes(ta, name, obj.version, &obj.nonce);
        mac_input.extend_from_slice(&obj.wrapped_fek);
        mac_input.extend_from_slice(&obj.ciphertext);
        if !hmac_verify(&mac_key, &mac_input, &obj.mac) {
            return Err(TeeError::IntegrityViolation {
                context: "secure storage object",
            });
        }
        let mut fek = obj.wrapped_fek;
        xor_stream(&enc_key, 0, &obj.nonce, &mut fek);
        let mut plain = obj.ciphertext.clone();
        xor_stream(&fek, 1, &obj.nonce, &mut plain);
        Ok(plain)
    }

    /// Deletes an object.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NotFound`] for unknown names.
    pub fn delete(&mut self, ta: Uuid, name: &str) -> Result<()> {
        self.objects
            .remove(&(ta, name.to_owned()))
            .map(|_| ())
            .ok_or_else(|| TeeError::NotFound {
                id: format!("{ta}/{name}"),
            })
    }

    /// Lists the object names stored for a TA (names are not secret in
    /// OP-TEE's REE-FS layout either).
    pub fn list(&self, ta: Uuid) -> Vec<String> {
        let mut names: Vec<String> = self
            .objects
            .keys()
            .filter(|(u, _)| *u == ta)
            .map(|(_, n)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Current version counter of an object (number of rewrites).
    pub fn version(&self, ta: Uuid, name: &str) -> Option<u64> {
        self.objects.get(&(ta, name.to_owned())).map(|o| o.version)
    }

    /// Failure injection for tests: flips one ciphertext bit at `offset`,
    /// as a malicious REE filesystem could. Returns `false` when the object
    /// does not exist or is too short.
    pub fn tamper_ciphertext(&mut self, ta: Uuid, name: &str, offset: usize) -> bool {
        match self.objects.get_mut(&(ta, name.to_owned())) {
            Some(o) if offset < o.ciphertext.len() => {
                o.ciphertext[offset] ^= 0x01;
                true
            }
            _ => false,
        }
    }

    /// Failure injection for tests: replaces an object with an older copy
    /// of itself would require keeping history; instead this lowers the
    /// version field (a rollback forgery), which must break the MAC.
    pub fn tamper_version(&mut self, ta: Uuid, name: &str) -> bool {
        match self.objects.get_mut(&(ta, name.to_owned())) {
            Some(o) => {
                o.version = o.version.wrapping_add(1);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (SecureStorage, Uuid) {
        (
            SecureStorage::new(b"device-secret", 42),
            Uuid::from_name("gradsec-ta"),
        )
    }

    #[test]
    fn roundtrip() {
        let (mut s, ta) = store();
        s.put(ta, "model", b"the model weights").unwrap();
        assert_eq!(s.get(ta, "model").unwrap(), b"the model weights");
    }

    #[test]
    fn missing_object() {
        let (s, ta) = store();
        assert!(matches!(s.get(ta, "nope"), Err(TeeError::NotFound { .. })));
    }

    #[test]
    fn overwrite_bumps_version_and_changes_ciphertext() {
        let (mut s, ta) = store();
        s.put(ta, "o", b"v0").unwrap();
        assert_eq!(s.version(ta, "o"), Some(0));
        s.put(ta, "o", b"v1").unwrap();
        assert_eq!(s.version(ta, "o"), Some(1));
        assert_eq!(s.get(ta, "o").unwrap(), b"v1");
    }

    #[test]
    fn tampering_ciphertext_is_detected() {
        let (mut s, ta) = store();
        s.put(ta, "o", b"sensitive gradients").unwrap();
        assert!(s.tamper_ciphertext(ta, "o", 3));
        assert!(matches!(
            s.get(ta, "o"),
            Err(TeeError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn tampering_version_is_detected() {
        let (mut s, ta) = store();
        s.put(ta, "o", b"data").unwrap();
        assert!(s.tamper_version(ta, "o"));
        assert!(matches!(
            s.get(ta, "o"),
            Err(TeeError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn per_ta_isolation() {
        let (mut s, ta) = store();
        let other = Uuid::from_name("other-ta");
        s.put(ta, "o", b"mine").unwrap();
        // The other TA does not see the object at all.
        assert!(s.get(other, "o").is_err());
        assert!(s.list(other).is_empty());
        assert_eq!(s.list(ta), vec!["o".to_owned()]);
    }

    #[test]
    fn same_plaintext_distinct_ciphertexts() {
        // Fresh FEK per write: identical payloads encrypt differently.
        let (mut s, ta) = store();
        s.put(ta, "a", b"same-bytes").unwrap();
        s.put(ta, "b", b"same-bytes").unwrap();
        let ca = s.objects[&(ta, "a".to_owned())].ciphertext.clone();
        let cb = s.objects[&(ta, "b".to_owned())].ciphertext.clone();
        assert_ne!(ca, cb);
        assert_ne!(ca, b"same-bytes".to_vec());
    }

    #[test]
    fn delete_then_get_fails() {
        let (mut s, ta) = store();
        s.put(ta, "o", b"x").unwrap();
        s.delete(ta, "o").unwrap();
        assert!(s.get(ta, "o").is_err());
        assert!(s.delete(ta, "o").is_err());
    }

    #[test]
    fn empty_and_large_payloads() {
        let (mut s, ta) = store();
        s.put(ta, "empty", b"").unwrap();
        assert_eq!(s.get(ta, "empty").unwrap(), b"");
        let big = vec![0xabu8; 1 << 16];
        s.put(ta, "big", &big).unwrap();
        assert_eq!(s.get(ta, "big").unwrap(), big);
    }
}
