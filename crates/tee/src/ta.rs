//! Trusted applications and the GlobalPlatform-style session API
//! (paper Figure 1: host application → TEE client API → trusted
//! application behind the secure monitor).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::crypto::sha256::sha256;
use crate::memory::SecureMemory;
use crate::monitor::SecureMonitor;
use crate::{Result, TeeError};

/// A 128-bit TA identifier, as in GlobalPlatform TEE specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Uuid(pub [u8; 16]);

impl Uuid {
    /// Derives a stable UUID from a human-readable name (hash-based,
    /// version-5 flavoured).
    pub fn from_name(name: &str) -> Self {
        let d = sha256(name.as_bytes());
        let mut u = [0u8; 16];
        u.copy_from_slice(&d[..16]);
        Uuid(u)
    }

    /// Byte view.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl std::fmt::Display for Uuid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, b) in self.0.iter().enumerate() {
            if matches!(i, 4 | 6 | 8 | 10) {
                write!(f, "-")?;
            }
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// A trusted application hosted by the secure OS.
///
/// Command semantics are TA-specific; `invoke` receives an opaque request
/// and returns an opaque response, like `TEEC_InvokeCommand` parameter
/// blobs.
pub trait TrustedApp: Send {
    /// The TA's identity.
    fn uuid(&self) -> Uuid;

    /// Human-readable name (diagnostics only).
    fn name(&self) -> &str;

    /// The bytes that remote attestation measures (the TA's "code").
    fn code(&self) -> &[u8];

    /// Handles one command inside the secure world.
    ///
    /// # Errors
    ///
    /// TA-specific failures surface as [`TeeError::TaError`].
    fn invoke(&mut self, command: u32, input: &[u8], memory: &mut SecureMemory) -> Result<Vec<u8>>;
}

/// The simulated trusted OS: owns the secure monitor, the secure memory
/// pool and the registered TAs, and mediates sessions from the normal
/// world.
pub struct TrustedOs {
    monitor: SecureMonitor,
    memory: SecureMemory,
    tas: HashMap<Uuid, Box<dyn TrustedApp>>,
    sessions: HashMap<u64, Uuid>,
    next_session: u64,
}

impl std::fmt::Debug for TrustedOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrustedOs")
            .field("tas", &self.tas.len())
            .field("sessions", &self.sessions.len())
            .field("memory_in_use", &self.memory.in_use())
            .finish()
    }
}

impl TrustedOs {
    /// Boots a trusted OS with the given secure-memory budget.
    pub fn with_budget(budget: usize) -> Self {
        TrustedOs {
            monitor: SecureMonitor::new(),
            memory: SecureMemory::with_budget(budget),
            tas: HashMap::new(),
            sessions: HashMap::new(),
            next_session: 1,
        }
    }

    /// Boots with the default 4 MiB budget.
    pub fn new() -> Self {
        TrustedOs::with_budget(crate::memory::DEFAULT_BUDGET)
    }

    /// Installs a TA image.
    pub fn register_ta(&mut self, ta: Box<dyn TrustedApp>) {
        self.tas.insert(ta.uuid(), ta);
    }

    /// Returns the measurement (SHA-256 of the code) of an installed TA,
    /// used by remote attestation.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NotFound`] for unknown UUIDs.
    pub fn measure_ta(&self, uuid: Uuid) -> Result<[u8; 32]> {
        let ta = self.tas.get(&uuid).ok_or_else(|| TeeError::NotFound {
            id: uuid.to_string(),
        })?;
        Ok(sha256(ta.code()))
    }

    /// Opens a session to a TA (one world round-trip).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NotFound`] for unknown UUIDs.
    pub fn open_session(&mut self, uuid: Uuid) -> Result<u64> {
        if !self.tas.contains_key(&uuid) {
            return Err(TeeError::NotFound {
                id: uuid.to_string(),
            });
        }
        self.monitor.smc_enter()?;
        let id = self.next_session;
        self.next_session += 1;
        self.sessions.insert(id, uuid);
        self.monitor.smc_exit()?;
        Ok(id)
    }

    /// Invokes a command on an open session (one world round-trip).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NoSuchSession`] for closed/unknown sessions and
    /// propagates TA failures.
    pub fn invoke(&mut self, session: u64, command: u32, input: &[u8]) -> Result<Vec<u8>> {
        let uuid = *self
            .sessions
            .get(&session)
            .ok_or(TeeError::NoSuchSession { session })?;
        self.monitor.smc_enter()?;
        let ta = self
            .tas
            .get_mut(&uuid)
            .expect("session points at a registered TA");
        let out = ta.invoke(command, input, &mut self.memory);
        self.monitor.smc_exit()?;
        out
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NoSuchSession`] for unknown sessions.
    pub fn close_session(&mut self, session: u64) -> Result<()> {
        self.sessions
            .remove(&session)
            .map(|_| ())
            .ok_or(TeeError::NoSuchSession { session })
    }

    /// The secure monitor (crossing statistics).
    pub fn monitor(&self) -> &SecureMonitor {
        &self.monitor
    }

    /// The secure memory pool.
    pub fn memory(&self) -> &SecureMemory {
        &self.memory
    }

    /// Mutable access to the secure memory pool (secure-world code only;
    /// the GradSec trainer manages layer buffers directly).
    pub fn memory_mut(&mut self) -> &mut SecureMemory {
        &mut self.memory
    }
}

impl Default for TrustedOs {
    fn default() -> Self {
        TrustedOs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy TA: command 0 echoes, command 1 allocates the input length.
    struct EchoTa {
        uuid: Uuid,
        code: Vec<u8>,
    }

    impl EchoTa {
        fn new() -> Self {
            EchoTa {
                uuid: Uuid::from_name("echo-ta"),
                code: b"echo-ta-code-v1".to_vec(),
            }
        }
    }

    impl TrustedApp for EchoTa {
        fn uuid(&self) -> Uuid {
            self.uuid
        }
        fn name(&self) -> &str {
            "echo"
        }
        fn code(&self) -> &[u8] {
            &self.code
        }
        fn invoke(
            &mut self,
            command: u32,
            input: &[u8],
            memory: &mut SecureMemory,
        ) -> Result<Vec<u8>> {
            match command {
                0 => Ok(input.to_vec()),
                1 => {
                    let a = memory.alloc(input.len())?;
                    let n = a.bytes() as u64;
                    memory.free(a)?;
                    Ok(n.to_le_bytes().to_vec())
                }
                _ => Err(TeeError::TaError {
                    reason: format!("unknown command {command}"),
                }),
            }
        }
    }

    #[test]
    fn uuid_from_name_is_stable_and_distinct() {
        assert_eq!(Uuid::from_name("a"), Uuid::from_name("a"));
        assert_ne!(Uuid::from_name("a"), Uuid::from_name("b"));
        let s = Uuid::from_name("a").to_string();
        assert_eq!(s.matches('-').count(), 4);
    }

    #[test]
    fn session_lifecycle() {
        let mut os = TrustedOs::new();
        os.register_ta(Box::new(EchoTa::new()));
        let uuid = Uuid::from_name("echo-ta");
        let s = os.open_session(uuid).unwrap();
        let out = os.invoke(s, 0, b"hello").unwrap();
        assert_eq!(out, b"hello");
        os.close_session(s).unwrap();
        assert!(matches!(
            os.invoke(s, 0, b"x"),
            Err(TeeError::NoSuchSession { .. })
        ));
        // Each open/invoke crossed twice.
        assert_eq!(os.monitor().crossings(), 4);
    }

    #[test]
    fn unknown_ta_and_commands() {
        let mut os = TrustedOs::new();
        assert!(os.open_session(Uuid::from_name("ghost")).is_err());
        os.register_ta(Box::new(EchoTa::new()));
        let s = os.open_session(Uuid::from_name("echo-ta")).unwrap();
        assert!(matches!(
            os.invoke(s, 99, b""),
            Err(TeeError::TaError { .. })
        ));
    }

    #[test]
    fn ta_can_use_secure_memory() {
        let mut os = TrustedOs::with_budget(1024);
        os.register_ta(Box::new(EchoTa::new()));
        let s = os.open_session(Uuid::from_name("echo-ta")).unwrap();
        let out = os.invoke(s, 1, &[0u8; 100]).unwrap();
        assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 100);
        // Oversized alloc inside the TA surfaces the enclave OOM.
        assert!(matches!(
            os.invoke(s, 1, &vec![0u8; 4096]),
            Err(TeeError::OutOfSecureMemory { .. })
        ));
        // The failed invoke still exited the secure world cleanly.
        assert!(!os.monitor().world().is_secure());
    }

    #[test]
    fn measurement_is_code_hash() {
        let mut os = TrustedOs::new();
        os.register_ta(Box::new(EchoTa::new()));
        let m = os.measure_ta(Uuid::from_name("echo-ta")).unwrap();
        assert_eq!(m, sha256(b"echo-ta-code-v1"));
        assert!(os.measure_ta(Uuid::from_name("nope")).is_err());
    }
}
