//! Trusted I/O path (paper §7.3).
//!
//! > "The client network interface could receive the model weights,
//! > related to the protected layers, from the FL server, and safely
//! > transfer them in the TEE secure memory throughout a secure channel."
//!
//! [`SecureChannel`] is that channel: an authenticated, sequenced,
//! encrypted pipe between the FL server and the client's enclave. Frames
//! carry a monotone sequence number under the MAC, so replay, reorder and
//! truncation are all detected — the properties the provisioning path
//! needs so protected weights never transit the normal world in clear.
//!
//! Since the federation's transport redesign, [`Frame`]s are also what
//! the sealed transport endpoints (`gradsec-fl::transport::sealed`) ship:
//! a whole protocol envelope is sealed here and the ciphertext crosses
//! the in-process channel or TCP socket unchanged.

use serde::{Deserialize, Serialize};

use crate::crypto::chacha20::{xor_stream, KEY_LEN, NONCE_LEN};
use crate::crypto::hmac::{hmac_sha256, hmac_verify};
use crate::crypto::kdf::derive_key;
use crate::{Result, TeeError};

/// Which side of the channel an endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// The FL server (initiator).
    Server,
    /// The FL client's enclave (responder).
    Client,
}

impl Role {
    fn send_label(self) -> &'static [u8] {
        match self {
            Role::Server => b"tiop-server-to-client",
            Role::Client => b"tiop-client-to-server",
        }
    }

    fn recv_label(self) -> &'static [u8] {
        match self {
            Role::Server => Role::Client.send_label(),
            Role::Client => Role::Server.send_label(),
        }
    }
}

/// One sealed frame on the wire (what the normal world sees).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Sequence number (covered by the MAC).
    pub seq: u64,
    /// Encrypted payload.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA-256 over `seq ‖ ciphertext`.
    pub mac: Vec<u8>,
}

/// One endpoint of the trusted I/O path.
///
/// Both endpoints are constructed from the same shared secret (established
/// out-of-band through remote attestation — see
/// [`crate::attestation`]) and a role; directional keys are derived so
/// the two directions never share a keystream.
///
/// # Example
///
/// ```
/// use gradsec_tee::tiop::{Role, SecureChannel};
///
/// # fn main() -> Result<(), gradsec_tee::TeeError> {
/// let mut server = SecureChannel::established(b"shared-secret", Role::Server);
/// let mut client = SecureChannel::established(b"shared-secret", Role::Client);
/// let frame = server.seal(b"layer-2 weights");
/// assert_eq!(client.open(&frame)?, b"layer-2 weights");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SecureChannel {
    send_key: [u8; KEY_LEN],
    recv_key: [u8; KEY_LEN],
    send_seq: u64,
    recv_seq: u64,
}

fn nonce_for(seq: u64) -> [u8; NONCE_LEN] {
    let mut n = [0u8; NONCE_LEN];
    n[..8].copy_from_slice(&seq.to_le_bytes());
    n
}

impl SecureChannel {
    /// Builds an endpoint over an already-agreed shared secret.
    pub fn established(shared_secret: &[u8], role: Role) -> Self {
        SecureChannel {
            send_key: derive_key(shared_secret, role.send_label()),
            recv_key: derive_key(shared_secret, role.recv_label()),
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Builds both ends of a channel at once — convenient for tests and
    /// for transports wiring the two roles inside one process.
    pub fn pair(shared_secret: &[u8]) -> (SecureChannel, SecureChannel) {
        (
            SecureChannel::established(shared_secret, Role::Server),
            SecureChannel::established(shared_secret, Role::Client),
        )
    }

    /// Encrypts and authenticates a payload, consuming one send sequence
    /// number.
    pub fn seal(&mut self, payload: &[u8]) -> Frame {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mut ciphertext = payload.to_vec();
        xor_stream(&self.send_key, 1, &nonce_for(seq), &mut ciphertext);
        let mut mac_input = seq.to_le_bytes().to_vec();
        mac_input.extend_from_slice(&ciphertext);
        let mac = hmac_sha256(&self.send_key, &mac_input).to_vec();
        Frame {
            seq,
            ciphertext,
            mac,
        }
    }

    /// Verifies and decrypts the next frame.
    ///
    /// # Errors
    ///
    /// * [`TeeError::ChannelViolation`] — out-of-order or replayed frame,
    /// * [`TeeError::IntegrityViolation`] — MAC failure (tampered frame).
    pub fn open(&mut self, frame: &Frame) -> Result<Vec<u8>> {
        if frame.seq != self.recv_seq {
            return Err(TeeError::ChannelViolation {
                reason: format!(
                    "expected sequence {}, got {} (replay or reorder)",
                    self.recv_seq, frame.seq
                ),
            });
        }
        let mut mac_input = frame.seq.to_le_bytes().to_vec();
        mac_input.extend_from_slice(&frame.ciphertext);
        if !hmac_verify(&self.recv_key, &mac_input, &frame.mac) {
            return Err(TeeError::IntegrityViolation {
                context: "trusted i/o frame",
            });
        }
        self.recv_seq += 1;
        let mut plain = frame.ciphertext.clone();
        xor_stream(&self.recv_key, 1, &nonce_for(frame.seq), &mut plain);
        Ok(plain)
    }

    /// Number of frames sent so far.
    pub fn frames_sent(&self) -> u64 {
        self.send_seq
    }

    /// Number of frames received and verified so far.
    pub fn frames_received(&self) -> u64 {
        self.recv_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        (
            SecureChannel::established(b"secret", Role::Server),
            SecureChannel::established(b"secret", Role::Client),
        )
    }

    #[test]
    fn bidirectional_roundtrip() {
        let (mut s, mut c) = pair();
        let f1 = s.seal(b"weights");
        assert_eq!(c.open(&f1).unwrap(), b"weights");
        let f2 = c.seal(b"ack");
        assert_eq!(s.open(&f2).unwrap(), b"ack");
        assert_eq!(s.frames_sent(), 1);
        assert_eq!(s.frames_received(), 1);
    }

    #[test]
    fn ciphertext_hides_payload() {
        let (mut s, _) = pair();
        let f = s.seal(b"super secret layer weights");
        assert_ne!(f.ciphertext, b"super secret layer weights".to_vec());
    }

    #[test]
    fn replay_is_rejected() {
        let (mut s, mut c) = pair();
        let f = s.seal(b"m0");
        c.open(&f).unwrap();
        assert!(matches!(c.open(&f), Err(TeeError::ChannelViolation { .. })));
    }

    #[test]
    fn reorder_is_rejected() {
        let (mut s, mut c) = pair();
        let _f0 = s.seal(b"m0");
        let f1 = s.seal(b"m1");
        assert!(matches!(
            c.open(&f1),
            Err(TeeError::ChannelViolation { .. })
        ));
    }

    #[test]
    fn tampering_is_rejected() {
        let (mut s, mut c) = pair();
        let mut f = s.seal(b"m0");
        f.ciphertext[0] ^= 1;
        assert!(matches!(
            c.open(&f),
            Err(TeeError::IntegrityViolation { .. })
        ));
        // Sequence was not consumed by the failed open.
        let good = s.seal(b"m1");
        assert!(matches!(
            c.open(&good),
            Err(TeeError::ChannelViolation { .. })
        ));
    }

    #[test]
    fn wrong_secret_fails_mac() {
        let mut s = SecureChannel::established(b"secret-a", Role::Server);
        let mut c = SecureChannel::established(b"secret-b", Role::Client);
        let f = s.seal(b"m");
        assert!(c.open(&f).is_err());
    }

    #[test]
    fn directions_use_distinct_keystreams() {
        let (mut s, mut c) = pair();
        let fs = s.seal(b"same-payload");
        let fc = c.seal(b"same-payload");
        assert_eq!(fs.seq, fc.seq);
        assert_ne!(fs.ciphertext, fc.ciphertext);
    }

    #[test]
    fn many_frames_in_order() {
        let (mut s, mut c) = pair();
        for i in 0..100u32 {
            let f = s.seal(&i.to_le_bytes());
            assert_eq!(c.open(&f).unwrap(), i.to_le_bytes());
        }
        assert_eq!(c.frames_received(), 100);
    }
}
