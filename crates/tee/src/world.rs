//! Processor worlds (paper §3.3, Figure 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two TrustZone execution worlds.
///
/// The *normal* world runs the Rich Execution Environment (the untrusted
/// OS and legacy applications — in the paper's threat model, everything
/// the attacker can read). The *secure* world runs the trusted OS and the
/// trusted applications whose memory is hardware-shielded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum World {
    /// Rich Execution Environment — untrusted.
    #[default]
    Normal,
    /// Trusted Execution Environment — shielded.
    Secure,
}

impl World {
    /// The other world.
    pub fn other(self) -> World {
        match self {
            World::Normal => World::Secure,
            World::Secure => World::Normal,
        }
    }

    /// `true` for [`World::Secure`].
    pub fn is_secure(self) -> bool {
        matches!(self, World::Secure)
    }
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            World::Normal => f.write_str("normal"),
            World::Secure => f.write_str("secure"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_involutive() {
        assert_eq!(World::Normal.other(), World::Secure);
        assert_eq!(World::Secure.other(), World::Normal);
        assert_eq!(World::Normal.other().other(), World::Normal);
    }

    #[test]
    fn secure_predicate() {
        assert!(World::Secure.is_secure());
        assert!(!World::Normal.is_secure());
    }

    #[test]
    fn default_is_normal() {
        assert_eq!(World::default(), World::Normal);
    }

    #[test]
    fn display_names() {
        assert_eq!(World::Normal.to_string(), "normal");
        assert_eq!(World::Secure.to_string(), "secure");
    }
}
