//! Property-based tests for the TrustZone simulator.

use gradsec_tee::crypto::chacha20::{xor_stream, KEY_LEN, NONCE_LEN};
use gradsec_tee::crypto::hmac::{hmac_sha256, hmac_verify};
use gradsec_tee::crypto::kdf::hkdf;
use gradsec_tee::crypto::sha256::{sha256, Sha256};
use gradsec_tee::memory::SecureMemory;
use gradsec_tee::storage::SecureStorage;
use gradsec_tee::ta::Uuid;
use gradsec_tee::tiop::{Role, SecureChannel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_incremental_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn chacha_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..300), key in any::<[u8; KEY_LEN]>(), nonce in any::<[u8; NONCE_LEN]>(), ctr in any::<u32>()) {
        let mut buf = data.clone();
        xor_stream(&key, ctr, &nonce, &mut buf);
        xor_stream(&key, ctr, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn hmac_verifies_itself_and_rejects_flips(
        key in proptest::collection::vec(any::<u8>(), 0..100),
        data in proptest::collection::vec(any::<u8>(), 0..200),
        flip in 0usize..32
    ) {
        let mut tag = hmac_sha256(&key, &data);
        prop_assert!(hmac_verify(&key, &data, &tag));
        tag[flip] ^= 0x80;
        prop_assert!(!hmac_verify(&key, &data, &tag));
    }

    #[test]
    fn hkdf_output_length_exact(len in 0usize..200) {
        prop_assert_eq!(hkdf(b"salt", b"ikm", b"info", len).len(), len);
    }

    #[test]
    fn storage_roundtrips_arbitrary_blobs(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        name in "[a-z]{1,12}",
        seed in any::<u64>()
    ) {
        let mut s = SecureStorage::new(b"dev", seed);
        let ta = Uuid::from_name("ta");
        s.put(ta, &name, &data).unwrap();
        prop_assert_eq!(s.get(ta, &name).unwrap(), data);
    }

    #[test]
    fn storage_detects_any_single_bit_tamper(
        data in proptest::collection::vec(any::<u8>(), 1..200),
        offset in 0usize..200
    ) {
        let mut s = SecureStorage::new(b"dev", 1);
        let ta = Uuid::from_name("ta");
        s.put(ta, "obj", &data).unwrap();
        let offset = offset % data.len();
        prop_assert!(s.tamper_ciphertext(ta, "obj", offset));
        prop_assert!(s.get(ta, "obj").is_err());
    }

    #[test]
    fn channel_delivers_any_message_sequence(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 1..20)
    ) {
        let mut tx = SecureChannel::established(b"s", Role::Server);
        let mut rx = SecureChannel::established(b"s", Role::Client);
        for m in &msgs {
            let f = tx.seal(m);
            prop_assert_eq!(&rx.open(&f).unwrap(), m);
        }
    }

    #[test]
    fn memory_accounting_invariants(ops in proptest::collection::vec((any::<bool>(), 1usize..2000), 1..60)) {
        let mut mem = SecureMemory::with_budget(8192);
        let mut live = Vec::new();
        let mut expected_in_use = 0usize;
        for (is_alloc, size) in ops {
            if is_alloc || live.is_empty() {
                match mem.alloc(size) {
                    Ok(h) => {
                        expected_in_use += size;
                        live.push(h);
                    }
                    Err(_) => prop_assert!(size > 8192 - expected_in_use),
                }
            } else {
                let h = live.pop().unwrap();
                expected_in_use -= h.bytes();
                mem.free(h).unwrap();
            }
            prop_assert_eq!(mem.in_use(), expected_in_use);
            prop_assert!(mem.in_use() <= mem.budget());
            prop_assert!(mem.peak() >= mem.in_use());
        }
    }
}
