//! Cache-blocked, unrolled kernels tuned for autovectorization.
//!
//! Safe Rust only (the crate keeps `#![forbid(unsafe_code)]`): the speed
//! comes from classic loop restructuring, not intrinsics —
//!
//! * **fused-k passes** — accumulation-style products ([`gemm_kfused`],
//!   `matmul_tn`, the conv `Wᵀ·δ` pass) fold [`KU`] steps of the shared
//!   dimension into one pass over each output row, quartering the
//!   load/store traffic on C that dominates the reference's one-step
//!   axpy loops and giving the vector units independent multiplies to
//!   overlap;
//! * **k-blocking** — [`gemm_kfused`] additionally tiles the shared
//!   dimension in [`KB`]-row panels so a B panel stays cache-hot while
//!   every output row consumes it (AlexNet's 4096×4096 dense products
//!   re-stream B from memory per row without this); `matmul_tn` keeps
//!   the reference's k-outermost walk, where each B row is consumed in
//!   one pass anyway;
//! * **multi-lane reductions** — dot products and sums accumulate in
//!   [`LANES`] independent chains (`chunks_exact`), breaking the serial
//!   FP dependency the reference kernels carry so the loop vectorizes.
//!
//! Reassociating reductions changes rounding: this backend is fully
//! deterministic (pure functions of its inputs, no host-dependent
//! decisions) but agrees with [`super::Reference`] only to ~1e-5 relative
//! error. Max pooling and the elementwise maps are memory-bound with
//! nothing to block or reorder, so they delegate to the reference
//! kernels and stay bit-identical.

use super::{scratch, BackendKind, Reference, TensorBackend};
use crate::ops::conv::{col2im, im2col, Conv2dGeometry};
use crate::ops::pool::PoolGeometry;

/// Fused steps along the shared (`k`) dimension per output pass.
const KU: usize = 4;

/// Shared-dimension block edge: a `KB`-row panel of B stays hot in cache
/// while every output row consumes it (the reference kernel's blocking,
/// kept here so large products don't re-stream B from memory per row).
const KB: usize = 64;

/// B-rows fused per A-row pass in the `nt` product.
const MR: usize = 4;

/// Independent accumulator chains for reductions.
const LANES: usize = 8;

/// The blocked kernel set (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Blocked;

/// Multi-lane inner product over equal-length slices.
fn dot_lanes(x: &[f32], y: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let xc = x.chunks_exact(LANES);
    let yc = y.chunks_exact(LANES);
    let mut tail = 0.0f32;
    for (xv, yv) in xc.remainder().iter().zip(yc.remainder()) {
        tail += xv * yv;
    }
    for (xs, ys) in xc.zip(yc) {
        for l in 0..LANES {
            lanes[l] += xs[l] * ys[l];
        }
    }
    lanes.iter().sum::<f32>() + tail
}

/// Multi-lane sum.
fn sum_lanes(xs: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let chunks = xs.chunks_exact(LANES);
    let mut tail = 0.0f32;
    for &x in chunks.remainder() {
        tail += x;
    }
    for c in chunks {
        for l in 0..LANES {
            lanes[l] += c[l];
        }
    }
    lanes.iter().sum::<f32>() + tail
}

/// `C (m×n) += A (m×k) · B (k×n)` — [`KB`]-blocked along the shared
/// dimension with [`KU`] steps fused per pass over each output row. The
/// reference kernel streams the C row (load + store) once *per* `k`
/// step; fusing four steps quarters that traffic and gives the inner
/// loop four independent multiplies per element for the vector units to
/// overlap, while the k-blocking keeps each B panel cache-hot across all
/// `m` output rows. Both `matmul` and the convolution forward GEMM
/// bottom out here: `matmul` accumulates into the caller's buffer
/// (`bias: None`, matching the reference kernel's contract exactly), the
/// conv forward seeds each output row `i` with `bias[i]` first.
fn gemm_kfused(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    bias: Option<&[f32]>,
) {
    if let Some(bias) = bias {
        for i in 0..m {
            c[i * n..(i + 1) * n].fill(bias[i]);
        }
    }
    for kb in (0..k).step_by(KB) {
        let kmax = (kb + KB).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            let mut kk = kb;
            while kk + KU <= kmax {
                let (v0, v1, v2, v3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
                let b0 = &b[kk * n..(kk + 1) * n];
                let b1 = &b[(kk + 1) * n..(kk + 2) * n];
                let b2 = &b[(kk + 2) * n..(kk + 3) * n];
                let b3 = &b[(kk + 3) * n..(kk + 4) * n];
                for j in 0..n {
                    crow[j] += v0 * b0[j] + v1 * b1[j] + v2 * b2[j] + v3 * b3[j];
                }
                kk += KU;
            }
            while kk < kmax {
                let v = arow[kk];
                let brow = &b[kk * n..(kk + 1) * n];
                for j in 0..n {
                    crow[j] += v * brow[j];
                }
                kk += 1;
            }
        }
    }
}

impl TensorBackend for Blocked {
    fn kind(&self) -> BackendKind {
        BackendKind::Blocked
    }

    fn matmul(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        gemm_kfused(a, b, c, m, k, n, None);
    }

    fn matmul_nt(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        // C[i][j] = ⟨A row i, B row j⟩ — both contiguous; the win is the
        // multi-lane dot plus processing 4 B-rows per A-row pass so the
        // A-row stays hot.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            let mut j = 0;
            while j + MR <= n {
                // Distinct B rows: the 4 dots share the streamed A row.
                crow[j] = dot_lanes(arow, &b[j * k..(j + 1) * k]);
                crow[j + 1] = dot_lanes(arow, &b[(j + 1) * k..(j + 2) * k]);
                crow[j + 2] = dot_lanes(arow, &b[(j + 2) * k..(j + 3) * k]);
                crow[j + 3] = dot_lanes(arow, &b[(j + 3) * k..(j + 4) * k]);
                j += MR;
            }
            while j < n {
                crow[j] = dot_lanes(arow, &b[j * k..(j + 1) * k]);
                j += 1;
            }
        }
    }

    fn matmul_tn(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        // C[i][j] += A[k][i]·B[k][j], k outermost as in the reference but
        // 4 k-steps fused per pass over C, quartering the C traffic.
        let mut kk = 0;
        while kk + MR <= k {
            let a0 = &a[kk * m..(kk + 1) * m];
            let a1 = &a[(kk + 1) * m..(kk + 2) * m];
            let a2 = &a[(kk + 2) * m..(kk + 3) * m];
            let a3 = &a[(kk + 3) * m..(kk + 4) * m];
            let b0 = &b[kk * n..(kk + 1) * n];
            let b1 = &b[(kk + 1) * n..(kk + 2) * n];
            let b2 = &b[(kk + 2) * n..(kk + 3) * n];
            let b3 = &b[(kk + 3) * n..(kk + 4) * n];
            for i in 0..m {
                let (v0, v1, v2, v3) = (a0[i], a1[i], a2[i], a3[i]);
                let orow = &mut c[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += v0 * b0[j] + v1 * b1[j] + v2 * b2[j] + v3 * b3[j];
                }
            }
            kk += MR;
        }
        while kk < k {
            let arow = &a[kk * m..(kk + 1) * m];
            let brow = &b[kk * n..(kk + 1) * n];
            for i in 0..m {
                let av = arow[i];
                let orow = &mut c[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += av * brow[j];
                }
            }
            kk += 1;
        }
    }

    fn matvec(&self, a: &[f32], x: &[f32], y: &mut [f32], m: usize, k: usize) {
        for (i, yi) in y.iter_mut().enumerate().take(m) {
            *yi = dot_lanes(&a[i * k..(i + 1) * k], x);
        }
    }

    fn conv2d_forward(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        out: &mut [f32],
        geo: &Conv2dGeometry,
    ) {
        let k2 = geo.in_channels * geo.kernel * geo.kernel;
        let cols = geo.out_h * geo.out_w;
        let n = input.len() / geo.in_len();
        scratch::with_col(geo.col_len(), |col| {
            for img in 0..n {
                let inp = &input[img * geo.in_len()..(img + 1) * geo.in_len()];
                im2col(inp, geo, col);
                let out_img = &mut out[img * geo.out_len()..(img + 1) * geo.out_len()];
                // out_img (F, cols) = W (F, k2) × col (k2, cols) + bias
                gemm_kfused(
                    weights,
                    col,
                    out_img,
                    geo.out_channels,
                    k2,
                    cols,
                    Some(bias),
                );
            }
        });
    }

    fn conv2d_backward(
        &self,
        input: &[f32],
        weights: &[f32],
        delta_out: &[f32],
        dw: &mut [f32],
        db: &mut [f32],
        dinput: &mut [f32],
        geo: &Conv2dGeometry,
    ) {
        let k2 = geo.in_channels * geo.kernel * geo.kernel;
        let cols = geo.out_h * geo.out_w;
        let n = input.len() / geo.in_len();
        scratch::with_col_pair(geo.col_len(), |col, dcol| {
            for img in 0..n {
                let inp = &input[img * geo.in_len()..(img + 1) * geo.in_len()];
                let dout = &delta_out[img * geo.out_len()..(img + 1) * geo.out_len()];
                im2col(inp, geo, col);
                // dW += δ (F, cols) × colᵀ — contiguous multi-lane dots.
                for f in 0..geo.out_channels {
                    let drow = &dout[f * cols..(f + 1) * cols];
                    let dwrow = &mut dw[f * k2..(f + 1) * k2];
                    for (kk, dwk) in dwrow.iter_mut().enumerate() {
                        *dwk += dot_lanes(drow, &col[kk * cols..(kk + 1) * cols]);
                    }
                    // db += Σ spatial δ (fused with the dW filter walk).
                    db[f] += sum_lanes(drow);
                }
                // dcol = Wᵀ (k2, F) × δ (F, cols): 4 filters fused per
                // pass over dcol, then scatter to image space.
                dcol.fill(0.0);
                let mut f = 0;
                while f + MR <= geo.out_channels {
                    let w0 = &weights[f * k2..(f + 1) * k2];
                    let w1 = &weights[(f + 1) * k2..(f + 2) * k2];
                    let w2 = &weights[(f + 2) * k2..(f + 3) * k2];
                    let w3 = &weights[(f + 3) * k2..(f + 4) * k2];
                    let d0 = &dout[f * cols..(f + 1) * cols];
                    let d1 = &dout[(f + 1) * cols..(f + 2) * cols];
                    let d2 = &dout[(f + 2) * cols..(f + 3) * cols];
                    let d3 = &dout[(f + 3) * cols..(f + 4) * cols];
                    for kk in 0..k2 {
                        let (v0, v1, v2, v3) = (w0[kk], w1[kk], w2[kk], w3[kk]);
                        let dcrow = &mut dcol[kk * cols..(kk + 1) * cols];
                        for j in 0..cols {
                            dcrow[j] += v0 * d0[j] + v1 * d1[j] + v2 * d2[j] + v3 * d3[j];
                        }
                    }
                    f += MR;
                }
                while f < geo.out_channels {
                    let wrow = &weights[f * k2..(f + 1) * k2];
                    let drow = &dout[f * cols..(f + 1) * cols];
                    for (kk, &w) in wrow.iter().enumerate() {
                        if w == 0.0 {
                            continue;
                        }
                        let dcrow = &mut dcol[kk * cols..(kk + 1) * cols];
                        for j in 0..cols {
                            dcrow[j] += w * drow[j];
                        }
                    }
                    f += 1;
                }
                let dinp = &mut dinput[img * geo.in_len()..(img + 1) * geo.in_len()];
                col2im(dcol, geo, dinp);
            }
        });
    }

    fn maxpool_forward(
        &self,
        input: &[f32],
        out: &mut [f32],
        argmax: &mut [u32],
        n: usize,
        geo: &PoolGeometry,
    ) {
        // Memory-bound argmax scan: nothing to block, identical to the
        // reference (bit-for-bit).
        Reference.maxpool_forward(input, out, argmax, n, geo);
    }

    fn maxpool_backward(
        &self,
        delta_out: &[f32],
        argmax: &[u32],
        dinput: &mut [f32],
        n: usize,
        geo: &PoolGeometry,
    ) {
        Reference.maxpool_backward(delta_out, argmax, dinput, n, geo);
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        // No reduction to reassociate — identical to the reference.
        Reference.axpy(alpha, x, y);
    }

    fn hadamard(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        Reference.hadamard(a, b, out);
    }

    fn scale(&self, s: f32, a: &[f32], out: &mut [f32]) {
        Reference.scale(s, a, out);
    }

    fn sum(&self, xs: &[f32]) -> f32 {
        sum_lanes(xs)
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        dot_lanes(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_reductions_match_serial_on_small_inputs() {
        let xs: Vec<f32> = (0..37).map(|i| (i as f32) * 0.25 - 4.0).collect();
        let ys: Vec<f32> = (0..37).map(|i| 1.0 - (i as f32) * 0.125).collect();
        let serial_sum: f32 = xs.iter().sum();
        let serial_dot: f32 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
        assert!((sum_lanes(&xs) - serial_sum).abs() < 1e-4);
        assert!((dot_lanes(&xs, &ys) - serial_dot).abs() < 1e-4);
    }

    #[test]
    fn gemm_handles_remainder_rows_and_columns() {
        // m, k chosen to exercise the fused-k remainder path; the bias
        // seeds each row, and a second bias-less call must *accumulate*
        // (the reference matmul contract).
        let (m, k, n) = (KU + 3, 5, 71);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 11) as f32 - 5.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 - 3.0).collect();
        let bias: Vec<f32> = (0..m).map(|i| i as f32).collect();
        let mut c = vec![0.0f32; m * n];
        gemm_kfused(&a, &b, &mut c, m, k, n, Some(&bias));
        gemm_kfused(&a, &b, &mut c, m, k, n, None);
        for i in 0..m {
            for j in 0..n {
                let mut acc = i as f32;
                for kk in 0..k {
                    acc += 2.0 * a[i * k + kk] * b[kk * n + j];
                }
                assert!(
                    (c[i * n + j] - acc).abs() < 1e-3,
                    "c[{i}][{j}] = {} vs {acc}",
                    c[i * n + j]
                );
            }
        }
    }
}
