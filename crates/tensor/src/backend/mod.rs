//! Pluggable tensor kernel backends.
//!
//! Every hot path of the reproduction — LeNet-5/AlexNet convolutions,
//! dense matmuls, the per-client cycles the federation engine fans out —
//! bottoms out in the kernels behind [`TensorBackend`]. The trait makes
//! that kernel set swappable the way the transport layer made the round
//! exchange swappable: the `ops::*` modules stay the public API (shape
//! validation, allocation, thread banding) and dispatch the innermost
//! loops to a backend chosen per call site.
//!
//! Three backends ship today:
//!
//! * [`BackendKind::Reference`] — the original scalar kernels, extracted
//!   verbatim from `ops::*`. This is the default everywhere and the
//!   determinism anchor: its results are bit-identical to the pre-backend
//!   kernels, so every seeded test and federation bit-identity gate holds
//!   unchanged.
//! * [`BackendKind::Blocked`] — cache-blocked, unrolled, safe Rust tuned
//!   for autovectorization. Deterministic (same inputs → bit-identical
//!   outputs) but *not* bit-identical to `Reference`: its kernels
//!   reassociate floating-point reductions, so outputs agree only to
//!   ~1e-5 relative error.
//! * [`BackendKind::Tiled`] — register-tiled GEMM micro-kernels (6×16
//!   tiles over packed panels) with two interchangeable inner kernels: a
//!   portable safe-Rust one and an x86-64 AVX2+FMA one (the crate's only
//!   `unsafe` island), selected at runtime via `is_x86_feature_detected!`
//!   with a `GRADSEC_TILED_ISA` override. Convolutions consume their
//!   input through a *virtual im2col* packer, so the conv path checks no
//!   column scratch out of the pool at all. Same contract as `Blocked`:
//!   deterministic per ISA path, ~1e-5 relative parity with `Reference`.
//!
//! Backend choice is a per-run policy, not a per-op one: the `nn` layers
//! carry a [`BackendKind`] into every forward/backward call,
//! `Sequential::replicate` copies it into per-client/per-worker model
//! replicas, and `FederationBuilder::backend(...)` (or the
//! `GRADSEC_BACKEND` environment variable) selects it for a whole
//! federation run. Within one backend, flat/sharded/faulted runs stay
//! bit-identical for any worker/shard/transport combination.

mod blocked;
mod reference;
pub(crate) mod scratch;
mod tiled;

pub use blocked::Blocked;
pub use reference::Reference;
pub use tiled::{Tiled, TiledIsa};

/// Column-scratch checkouts performed by the calling thread so far (a
/// monotonic counter). Banded conv dispatchers run their kernels on
/// scoped worker threads, so observe this across a *single-band* op to
/// see exactly that op's scratch traffic — the `Tiled` backend's
/// virtual-im2col conv path is asserted to add zero.
pub fn thread_scratch_checkouts() -> u64 {
    scratch::thread_checkouts()
}

use crate::ops::conv::Conv2dGeometry;
use crate::ops::pool::PoolGeometry;

/// Selects a [`TensorBackend`] implementation.
///
/// This is the value the layers, the model container and the federation
/// builder thread around; resolve it to kernels with
/// [`BackendKind::kernels`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The original scalar kernels — the default, bit-identical to the
    /// seed implementation.
    #[default]
    Reference,
    /// Cache-blocked, unrolled, autovectorization-friendly kernels —
    /// deterministic, ~1e-5 relative parity with `Reference`.
    Blocked,
    /// Register-tiled GEMM micro-kernels (portable or AVX2+FMA, chosen
    /// at runtime) with virtual-im2col convolutions — deterministic per
    /// ISA path, ~1e-5 relative parity with `Reference`.
    Tiled,
}

static REFERENCE: Reference = Reference;
static BLOCKED: Blocked = Blocked;
static TILED: Tiled = Tiled::auto();

impl BackendKind {
    /// Every selectable backend, in documentation order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Reference,
        BackendKind::Blocked,
        BackendKind::Tiled,
    ];

    /// Resolves the selector to its kernel implementation.
    pub fn kernels(self) -> &'static dyn TensorBackend {
        match self {
            BackendKind::Reference => &REFERENCE,
            BackendKind::Blocked => &BLOCKED,
            BackendKind::Tiled => &TILED,
        }
    }

    /// The selector's canonical lowercase name (what
    /// [`BackendKind::parse`] accepts and `GRADSEC_BACKEND` is matched
    /// against).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Reference => "reference",
            BackendKind::Blocked => "blocked",
            BackendKind::Tiled => "tiled",
        }
    }

    /// Parses a backend name (case-insensitive, surrounding whitespace
    /// ignored). Returns `None` for unrecognised names.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reference" => Some(BackendKind::Reference),
            "blocked" => Some(BackendKind::Blocked),
            "tiled" => Some(BackendKind::Tiled),
            _ => None,
        }
    }

    /// Reads the backend selection from the `GRADSEC_BACKEND` environment
    /// variable. Unset or unrecognised values select
    /// [`BackendKind::Reference`] — the env var is an opt-in accelerator
    /// switch, never a way to break determinism by accident.
    pub fn from_env() -> Self {
        std::env::var("GRADSEC_BACKEND")
            .ok()
            .and_then(|v| BackendKind::parse(&v))
            .unwrap_or_default()
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An elementwise activation a kernel may fuse into its output
/// writeback.
///
/// The variants mirror the `nn` crate's activation formulas *exactly*
/// (same scalar expressions), so a fused kernel that applies
/// [`FusedActivation::apply`] to its final accumulated pre-activation
/// produces bit-identical activations to the unfused
/// kernel-then-elementwise-map path within the same backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FusedActivation {
    /// Identity: `f(z) = z`.
    #[default]
    Identity,
    /// Rectified linear unit: `f(z) = max(0, z)`.
    Relu,
    /// Logistic sigmoid: `f(z) = 1/(1+e^{−z})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl FusedActivation {
    /// Applies the activation to a single pre-activation value.
    #[inline]
    pub fn apply(self, z: f32) -> f32 {
        match self {
            FusedActivation::Identity => z,
            FusedActivation::Relu => z.max(0.0),
            FusedActivation::Sigmoid => 1.0 / (1.0 + (-z).exp()),
            FusedActivation::Tanh => z.tanh(),
        }
    }
}

/// The swappable kernel set behind `ops::*`.
///
/// Implementations are stateless and shared (`&'static`): all buffers
/// arrive as arguments, pre-validated and pre-sized by the dispatchers in
/// `ops::matmul`, `ops::conv`, `ops::pool`, `ops::elementwise` and
/// `ops::reduce` — kernels may assume consistent lengths (the dispatchers
/// debug-assert them) and must not allocate per element.
///
/// # Contract
///
/// * **Determinism** — a kernel's output is a pure function of its
///   inputs: same inputs twice → bit-identical outputs, on any machine.
///   Banding decisions that could vary by host (core count) live in the
///   dispatchers and only ever split work in result-preserving ways.
/// * **Accumulation** — `matmul` and `matmul_tn` *accumulate* into `c`
///   (every implementation; the dispatchers supply a zeroed buffer),
///   while `matmul_nt`, `matvec` and `conv2d_forward` overwrite every
///   output element; `conv2d_backward` accumulates into `dw`/`db`
///   (per-band partials are reduced by the dispatcher in band order)
///   and into `dinput`.
pub trait TensorBackend: Send + Sync + std::fmt::Debug {
    /// The selector this implementation answers to.
    fn kind(&self) -> BackendKind;

    /// `C (m×n) += A (m×k) · B (k×n)`, row-major, accumulating into `c`
    /// (the dispatcher supplies a zeroed buffer).
    fn matmul(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize);

    /// `C (m×n) = A (m×k) · Bᵀ` with `B` stored `(n×k)`; overwrites
    /// every element of `c`.
    fn matmul_nt(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize);

    /// `C (m×n) += Aᵀ · B` with `A` stored `(k×m)`, `B` `(k×n)`,
    /// accumulating into `c` (the dispatcher supplies a zeroed buffer).
    fn matmul_tn(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize);

    /// `y (m) = A (m×k) · x (k)`; overwrites every element of `y`.
    fn matvec(&self, a: &[f32], x: &[f32], y: &mut [f32], m: usize, k: usize);

    /// Convolution forward pass over one contiguous band of images
    /// (`input.len() / geo.in_len()` of them); writes every element of
    /// `out`.
    fn conv2d_forward(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        out: &mut [f32],
        geo: &Conv2dGeometry,
    );

    /// Both convolution backward passes over one band: accumulates the
    /// filter gradients into `dw`/`db` and the data gradient into the
    /// band's `dinput` slice.
    #[allow(clippy::too_many_arguments)]
    fn conv2d_backward(
        &self,
        input: &[f32],
        weights: &[f32],
        delta_out: &[f32],
        dw: &mut [f32],
        db: &mut [f32],
        dinput: &mut [f32],
        geo: &Conv2dGeometry,
    );

    /// Max-pool forward over `n` images, recording per-image flat argmax
    /// offsets for the backward pass.
    fn maxpool_forward(
        &self,
        input: &[f32],
        out: &mut [f32],
        argmax: &mut [u32],
        n: usize,
        geo: &PoolGeometry,
    );

    /// Max-pool backward over `n` images: routes each upstream error to
    /// the input position that won the forward max (`dinput`
    /// zero-initialised, accumulated into).
    fn maxpool_backward(
        &self,
        delta_out: &[f32],
        argmax: &[u32],
        dinput: &mut [f32],
        n: usize,
        geo: &PoolGeometry,
    );

    /// `y ← y + alpha·x` (the BLAS `axpy` primitive).
    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]);

    /// Elementwise `out = a ∗ b` (Hadamard product).
    fn hadamard(&self, a: &[f32], b: &[f32], out: &mut [f32]);

    /// Elementwise `out = s·a`.
    fn scale(&self, s: f32, a: &[f32], out: &mut [f32]);

    /// `Σ xs`.
    fn sum(&self, xs: &[f32]) -> f32;

    /// `Σ a∗b` (inner product).
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// Convolution forward pass fused with an elementwise activation:
    /// writes the pre-activations into `z` *and* `act(z)` into `a` over
    /// one band of images (the `nn` conv layers cache `z` for the
    /// backward pass and hand `a` to the next layer, so both buffers are
    /// always needed).
    ///
    /// The default is the unfused two-sweep path — the kernel followed by
    /// an elementwise map in the same order the layers used before fusion
    /// existed, so `Reference`/`Blocked` stay bit-identical to their
    /// historical behaviour. Backends that fuse (e.g. `Tiled`, which
    /// applies `act` during the final tile writeback) must produce the
    /// same `z` as their unfused kernel and `a = act(z)` exactly.
    #[allow(clippy::too_many_arguments)]
    fn conv2d_forward_fused(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        z: &mut [f32],
        a: &mut [f32],
        act: FusedActivation,
        geo: &Conv2dGeometry,
    ) {
        self.conv2d_forward(input, weights, bias, z, geo);
        for (ai, &zi) in a.iter_mut().zip(z.iter()) {
            *ai = act.apply(zi);
        }
    }

    /// Dense forward pass fused with bias and an elementwise activation:
    /// `z (m×n) = input (m×k) · weightsᵀ + bias`, `a = act(z)`, with
    /// `weights` stored `(n×k)` (the Darknet row-per-output convention).
    ///
    /// Same contract as [`TensorBackend::conv2d_forward_fused`]: the
    /// default replays the historical unfused op order (matmul_nt, then
    /// per-row bias add, then elementwise map) bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    fn dense_forward_fused(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        z: &mut [f32],
        a: &mut [f32],
        act: FusedActivation,
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.matmul_nt(input, weights, z, m, k, n);
        for row in z.chunks_mut(n) {
            for (zj, &bj) in row.iter_mut().zip(bias) {
                *zj += bj;
            }
        }
        for (ai, &zi) in a.iter_mut().zip(z.iter()) {
            *ai = act.apply(zi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_names() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.kernels().kind(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(BackendKind::parse(" Blocked\n"), Some(BackendKind::Blocked));
        assert_eq!(
            BackendKind::parse("REFERENCE"),
            Some(BackendKind::Reference)
        );
        assert_eq!(BackendKind::parse("simd"), None);
        assert_eq!(BackendKind::parse(""), None);
    }

    #[test]
    fn default_is_reference() {
        assert_eq!(BackendKind::default(), BackendKind::Reference);
    }
}
