//! The original scalar kernels, extracted verbatim from `ops::*`.
//!
//! This backend is the determinism anchor of the whole reproduction: its
//! loops are exactly the seed implementation's, so every seeded training
//! run, every federation bit-identity gate and every recorded repro table
//! is reproduced bit-for-bit. Only the convolution scratch allocation
//! changed — the per-call `vec![0.0; col_len]` buffers moved to the
//! process-wide checkout/return pool in [`super::scratch`], which cannot
//! affect values because every kernel fully overwrites the region it
//! reads.

use super::{scratch, BackendKind, TensorBackend};
use crate::ops::conv::{col2im, im2col, Conv2dGeometry};
use crate::ops::pool::PoolGeometry;

/// Block edge for the cache-blocked `matmul` kernel (the seed constant).
const BLOCK: usize = 64;

/// The seed kernel set (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Reference;

impl TensorBackend for Reference {
    fn kind(&self) -> BackendKind {
        BackendKind::Reference
    }

    /// Cache-blocked single-threaded `C += A·B` kernel over raw slices.
    fn matmul(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for ib in (0..m).step_by(BLOCK) {
            let imax = (ib + BLOCK).min(m);
            for kb in (0..k).step_by(BLOCK) {
                let kmax = (kb + BLOCK).min(k);
                for i in ib..imax {
                    let crow = &mut c[i * n..(i + 1) * n];
                    for kk in kb..kmax {
                        let aik = a[i * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n..(kk + 1) * n];
                        for j in 0..n {
                            crow[j] += aik * brow[j];
                        }
                    }
                }
            }
        }
    }

    fn matmul_nt(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        // C[i][j] = Σ_k A[i][k]·B[j][k]; contiguous in k for both operands.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += arow[kk] * brow[kk];
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn matmul_tn(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        // C[i][j] = Σ_k A[k][i]·B[k][j]: accumulate row-banded, k outermost
        // so both reads stream contiguously.
        for kk in 0..k {
            let arow = &a[kk * m..(kk + 1) * m];
            let brow = &b[kk * n..(kk + 1) * n];
            for i in 0..m {
                let aik = arow[i];
                if aik == 0.0 {
                    continue;
                }
                let orow = &mut c[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += aik * brow[j];
                }
            }
        }
    }

    fn matvec(&self, a: &[f32], x: &[f32], y: &mut [f32], m: usize, k: usize) {
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            y[i] = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
    }

    /// Sequential forward kernel over one contiguous band of images.
    fn conv2d_forward(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        out: &mut [f32],
        geo: &Conv2dGeometry,
    ) {
        let k2 = geo.in_channels * geo.kernel * geo.kernel;
        let cols = geo.out_h * geo.out_w;
        let n = input.len() / geo.in_len();
        scratch::with_col(geo.col_len(), |col| {
            for img in 0..n {
                let inp = &input[img * geo.in_len()..(img + 1) * geo.in_len()];
                im2col(inp, geo, col);
                let out_img = &mut out[img * geo.out_len()..(img + 1) * geo.out_len()];
                // out_img (F, cols) = W (F, k2) × col (k2, cols)
                for f in 0..geo.out_channels {
                    let wrow = &weights[f * k2..(f + 1) * k2];
                    let orow = &mut out_img[f * cols..(f + 1) * cols];
                    orow.fill(bias[f]);
                    for (kk, &w) in wrow.iter().enumerate() {
                        if w == 0.0 {
                            continue;
                        }
                        let crow = &col[kk * cols..(kk + 1) * cols];
                        for j in 0..cols {
                            orow[j] += w * crow[j];
                        }
                    }
                }
            }
        });
    }

    /// Sequential backward kernel over one contiguous band of images,
    /// accumulating into the provided `dw`/`db` buffers and writing the
    /// band's `dinput` slice.
    fn conv2d_backward(
        &self,
        input: &[f32],
        weights: &[f32],
        delta_out: &[f32],
        dw: &mut [f32],
        db: &mut [f32],
        dinput: &mut [f32],
        geo: &Conv2dGeometry,
    ) {
        let k2 = geo.in_channels * geo.kernel * geo.kernel;
        let cols = geo.out_h * geo.out_w;
        let n = input.len() / geo.in_len();
        scratch::with_col_pair(geo.col_len(), |col, dcol| {
            for img in 0..n {
                let inp = &input[img * geo.in_len()..(img + 1) * geo.in_len()];
                let dout = &delta_out[img * geo.out_len()..(img + 1) * geo.out_len()];
                im2col(inp, geo, col);
                // dW += δ (F, cols) × colᵀ (cols, k2)
                for f in 0..geo.out_channels {
                    let drow = &dout[f * cols..(f + 1) * cols];
                    let dwrow = &mut dw[f * k2..(f + 1) * k2];
                    for kk in 0..k2 {
                        let crow = &col[kk * cols..(kk + 1) * cols];
                        let mut acc = 0.0f32;
                        for j in 0..cols {
                            acc += drow[j] * crow[j];
                        }
                        dwrow[kk] += acc;
                    }
                }
                // db += Σ spatial δ
                for f in 0..geo.out_channels {
                    db[f] += dout[f * cols..(f + 1) * cols].iter().sum::<f32>();
                }
                // dcol = Wᵀ (k2, F) × δ (F, cols); then scatter to image space.
                dcol.fill(0.0);
                for f in 0..geo.out_channels {
                    let wrow = &weights[f * k2..(f + 1) * k2];
                    let drow = &dout[f * cols..(f + 1) * cols];
                    for kk in 0..k2 {
                        let w = wrow[kk];
                        if w == 0.0 {
                            continue;
                        }
                        let dcrow = &mut dcol[kk * cols..(kk + 1) * cols];
                        for j in 0..cols {
                            dcrow[j] += w * drow[j];
                        }
                    }
                }
                let dinp = &mut dinput[img * geo.in_len()..(img + 1) * geo.in_len()];
                col2im(dcol, geo, dinp);
            }
        });
    }

    fn maxpool_forward(
        &self,
        input: &[f32],
        out: &mut [f32],
        argmax: &mut [u32],
        n: usize,
        geo: &PoolGeometry,
    ) {
        let in_img = geo.channels * geo.in_h * geo.in_w;
        let out_img = geo.channels * geo.out_h * geo.out_w;
        for img in 0..n {
            let inp = &input[img * in_img..(img + 1) * in_img];
            let od = &mut out[img * out_img..(img + 1) * out_img];
            let am = &mut argmax[img * out_img..(img + 1) * out_img];
            for c in 0..geo.channels {
                for oh in 0..geo.out_h {
                    for ow in 0..geo.out_w {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for wi in 0..geo.window {
                            for wj in 0..geo.window {
                                let ih = oh * geo.stride + wi;
                                let iw = ow * geo.stride + wj;
                                let idx = c * geo.in_h * geo.in_w + ih * geo.in_w + iw;
                                if inp[idx] > best {
                                    best = inp[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = c * geo.out_h * geo.out_w + oh * geo.out_w + ow;
                        od[o] = best;
                        am[o] = best_idx as u32;
                    }
                }
            }
        }
    }

    fn maxpool_backward(
        &self,
        delta_out: &[f32],
        argmax: &[u32],
        dinput: &mut [f32],
        n: usize,
        geo: &PoolGeometry,
    ) {
        let in_img = geo.channels * geo.in_h * geo.in_w;
        let out_img = geo.channels * geo.out_h * geo.out_w;
        for img in 0..n {
            let dout = &delta_out[img * out_img..(img + 1) * out_img];
            let am = &argmax[img * out_img..(img + 1) * out_img];
            let dinp = &mut dinput[img * in_img..(img + 1) * in_img];
            for (o, &src) in am.iter().enumerate() {
                dinp[src as usize] += dout[o];
            }
        }
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    fn hadamard(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        for ((&x, &y), o) in a.iter().zip(b).zip(out.iter_mut()) {
            *o = x * y;
        }
    }

    fn scale(&self, s: f32, a: &[f32], out: &mut [f32]) {
        for (&x, o) in a.iter().zip(out.iter_mut()) {
            *o = x * s;
        }
    }

    fn sum(&self, xs: &[f32]) -> f32 {
        xs.iter().sum()
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }
}
