//! Reusable scratch buffers for the im2col/col2im convolution kernels.
//!
//! One client cycle calls `conv2d_forward`/`conv2d_backward` once per
//! convolutional layer per batch; allocating the `(C·K·K) × (OH·OW)`
//! column matrix inside every call used to dominate the kernel bench for
//! small layers. Buffers are instead checked out of a process-wide pool
//! and returned after the kernel runs, so they are reused across calls —
//! including across the *fresh scoped threads* the banded conv path
//! spawns per call (a thread-local cache would die with each band
//! worker). Reuse is value-safe because every kernel fully overwrites
//! the region it uses (`im2col` writes every element; the `dcol` buffer
//! is `fill(0.0)`ed).
//!
//! The pool is bounded on both axes so long multi-shape federations
//! cannot accumulate unbounded scratch memory: at most
//! [`MAX_POOLED`] buffers are retained (a return beyond the cap is
//! dropped), and a buffer that has grown past [`MAX_RETAIN_ELEMS`]
//! elements is dropped on return instead of parked — oversized
//! one-off shapes (a paper-scale layer probed once) must not pin tens of
//! megabytes for the rest of the process. The two lock round-trips per
//! kernel call are nanoseconds against the micro/milliseconds the kernel
//! itself takes. A buffer held across a kernel panic is simply dropped,
//! never returned poisoned.
//!
//! Each checkout also bumps a thread-local counter (read through
//! [`crate::backend::thread_scratch_checkouts`]) so tests can assert how
//! much column scratch an op consumed — in particular that the `Tiled`
//! backend's virtual-im2col conv path checks out none at all.

use std::cell::Cell;
use std::sync::Mutex;

/// Maximum buffers retained in the pool; returns beyond this are dropped.
pub(crate) const MAX_POOLED: usize = 32;

/// Maximum elements a retained buffer may hold; larger returns are
/// dropped (16 MiB of `f32` per buffer).
pub(crate) const MAX_RETAIN_ELEMS: usize = 4 * 1024 * 1024;

static POOL: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());

thread_local! {
    static CHECKOUTS: Cell<u64> = const { Cell::new(0) };
}

/// Column-scratch checkouts performed *by the calling thread* since it
/// started. Banded conv calls run their kernels on scoped worker
/// threads, so a caller observing its own counter across a single-band
/// (single-threaded) op sees exactly that op's scratch traffic.
pub(crate) fn thread_checkouts() -> u64 {
    CHECKOUTS.with(Cell::get)
}

fn checkout(col_len: usize) -> Vec<f32> {
    CHECKOUTS.with(|c| c.set(c.get() + 1));
    let mut buf = POOL
        .lock()
        .expect("scratch pool lock poisoned")
        .pop()
        .unwrap_or_default();
    if buf.len() < col_len {
        buf.resize(col_len, 0.0);
    }
    buf
}

fn give_back(buf: Vec<f32>) {
    if buf.capacity() > MAX_RETAIN_ELEMS {
        return;
    }
    let mut pool = POOL.lock().expect("scratch pool lock poisoned");
    if pool.len() < MAX_POOLED {
        pool.push(buf);
    }
}

/// Number of buffers currently parked in the pool (test observability).
#[cfg(test)]
fn pooled() -> usize {
    POOL.lock().expect("scratch pool lock poisoned").len()
}

/// Largest capacity currently parked in the pool (test observability).
#[cfg(test)]
fn pooled_max_capacity() -> usize {
    POOL.lock()
        .expect("scratch pool lock poisoned")
        .iter()
        .map(Vec::capacity)
        .max()
        .unwrap_or(0)
}

/// Runs `f` with a pooled column buffer of at least `col_len` elements
/// (the forward pass needs one buffer).
pub(crate) fn with_col<R>(col_len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = checkout(col_len);
    let out = f(&mut buf[..col_len]);
    give_back(buf);
    out
}

/// Runs `f` with two pooled column buffers of at least `col_len`
/// elements each (the backward pass needs `col` and `dcol`).
pub(crate) fn with_col_pair<R>(col_len: usize, f: impl FnOnce(&mut [f32], &mut [f32]) -> R) -> R {
    let mut col = checkout(col_len);
    let mut dcol = checkout(col_len);
    let out = f(&mut col[..col_len], &mut dcol[..col_len]);
    give_back(col);
    give_back(dcol);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_returned_and_reused_across_threads() {
        // Fill a buffer, return it, then observe the recycled contents
        // from a *different* thread — the cross-thread reuse the banded
        // conv path relies on. Kernels must overwrite what they read,
        // and do: this test documents that contract rather than clean
        // memory.
        with_col(8, |col| {
            assert_eq!(col.len(), 8);
            col.fill(7.0);
        });
        std::thread::spawn(|| {
            with_col(4, |col| {
                assert_eq!(col.len(), 4);
            });
        })
        .join()
        .expect("scratch thread joins");
        with_col_pair(16, |col, dcol| {
            assert_eq!(col.len(), 16);
            assert_eq!(dcol.len(), 16);
        });
    }

    #[test]
    fn pool_never_retains_more_than_the_cap() {
        // Churn far more buffers through the pool than the cap, from
        // nested checkouts so several are outstanding at once. The pool
        // is process-global and other tests run concurrently, so assert
        // the *invariant* (never above the cap), not an exact count.
        for _ in 0..3 {
            with_col_pair(64, |_, _| {
                with_col_pair(64, |_, _| {
                    for _ in 0..2 * MAX_POOLED {
                        with_col(32, |_| {});
                    }
                });
            });
            assert!(
                pooled() <= MAX_POOLED,
                "pool grew past cap: {} > {MAX_POOLED}",
                pooled()
            );
        }
    }

    #[test]
    fn oversized_returns_are_dropped_not_parked() {
        // A one-off paper-scale checkout must not pin its memory in the
        // pool. Invariant-style assertion again: no parked buffer may
        // ever exceed the retain bound, whatever other tests are doing.
        with_col(MAX_RETAIN_ELEMS + 1, |col| {
            assert_eq!(col.len(), MAX_RETAIN_ELEMS + 1);
        });
        assert!(
            pooled_max_capacity() <= MAX_RETAIN_ELEMS,
            "oversized buffer was parked: {} elements",
            pooled_max_capacity()
        );
    }

    #[test]
    fn checkouts_are_counted_per_thread() {
        let before = thread_checkouts();
        with_col(8, |_| {});
        with_col_pair(8, |_, _| {});
        assert_eq!(thread_checkouts() - before, 3);
        // Another thread's checkouts never leak into this thread's count.
        let here = thread_checkouts();
        std::thread::spawn(|| with_col(8, |_| {}))
            .join()
            .expect("counter thread joins");
        assert_eq!(thread_checkouts(), here);
    }
}
