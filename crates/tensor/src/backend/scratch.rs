//! Reusable scratch buffers for the im2col/col2im convolution kernels.
//!
//! One client cycle calls `conv2d_forward`/`conv2d_backward` once per
//! convolutional layer per batch; allocating the `(C·K·K) × (OH·OW)`
//! column matrix inside every call used to dominate the kernel bench for
//! small layers. Buffers are instead checked out of a process-wide pool
//! and returned after the kernel runs, so they are reused across calls —
//! including across the *fresh scoped threads* the banded conv path
//! spawns per call (a thread-local cache would die with each band
//! worker). Reuse is value-safe because every kernel fully overwrites
//! the region it uses (`im2col` writes every element; the `dcol` buffer
//! is `fill(0.0)`ed).
//!
//! The pool holds at most as many buffers as ran concurrently (bands ×
//! engine workers at peak), each grown to the largest `col_len` it has
//! served; the two lock round-trips per kernel call are nanoseconds
//! against the micro/milliseconds the kernel itself takes. A buffer
//! held across a kernel panic is simply dropped, never returned poisoned.

use std::sync::Mutex;

static POOL: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());

fn checkout(col_len: usize) -> Vec<f32> {
    let mut buf = POOL
        .lock()
        .expect("scratch pool lock poisoned")
        .pop()
        .unwrap_or_default();
    if buf.len() < col_len {
        buf.resize(col_len, 0.0);
    }
    buf
}

fn give_back(buf: Vec<f32>) {
    POOL.lock().expect("scratch pool lock poisoned").push(buf);
}

/// Runs `f` with a pooled column buffer of at least `col_len` elements
/// (the forward pass needs one buffer).
pub(crate) fn with_col<R>(col_len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = checkout(col_len);
    let out = f(&mut buf[..col_len]);
    give_back(buf);
    out
}

/// Runs `f` with two pooled column buffers of at least `col_len`
/// elements each (the backward pass needs `col` and `dcol`).
pub(crate) fn with_col_pair<R>(col_len: usize, f: impl FnOnce(&mut [f32], &mut [f32]) -> R) -> R {
    let mut col = checkout(col_len);
    let mut dcol = checkout(col_len);
    let out = f(&mut col[..col_len], &mut dcol[..col_len]);
    give_back(col);
    give_back(dcol);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_returned_and_reused_across_threads() {
        // Fill a buffer, return it, then observe the recycled contents
        // from a *different* thread — the cross-thread reuse the banded
        // conv path relies on. Kernels must overwrite what they read,
        // and do: this test documents that contract rather than clean
        // memory.
        with_col(8, |col| {
            assert_eq!(col.len(), 8);
            col.fill(7.0);
        });
        std::thread::spawn(|| {
            with_col(4, |col| {
                assert_eq!(col.len(), 4);
            });
        })
        .join()
        .expect("scratch thread joins");
        with_col_pair(16, |col, dcol| {
            assert_eq!(col.len(), 16);
            assert_eq!(dcol.len(), 16);
        });
    }
}
