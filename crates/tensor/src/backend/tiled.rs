//! Register-tiled GEMM kernels with virtual-im2col convolutions.
//!
//! Every op here is lowered onto one GEMM core: a 6×16 (`MR`×`NR`)
//! register tile marched over packed operand panels, with the shared
//! dimension blocked in [`KC`]-wide slabs so the active B panel
//! (`KC×NR`, 16 KiB) stays L1-resident and the packed A slab
//! (`m×KC`) streams from L2/L3. The innermost micro-kernel exists
//! twice:
//!
//! * a **portable** safe-Rust kernel written so the autovectorizer can
//!   lift it to whatever SIMD the target baseline has, and
//! * an **x86-64 AVX2+FMA** kernel — the crate's only `unsafe` island —
//!   holding the whole 6×16 tile in twelve YMM accumulators.
//!
//! The ISA is chosen per call: a [`Tiled::with_isa`] instance is pinned,
//! otherwise the `GRADSEC_TILED_ISA` environment variable
//! (`portable`/`avx2`) is honoured, otherwise `is_x86_feature_detected!`
//! picks AVX2 when the host has it. `avx2` silently falls back to
//! portable on hosts without the features, so CI recipes are portable.
//!
//! Convolutions never materialise an im2col buffer: the packers gather
//! patch taps straight from the `NCHW` input into the GEMM panels
//! (*virtual im2col*), and the backward data pass scatters tile results
//! straight into `dinput` (a fused col2im), so the conv path performs
//! **zero** `backend::scratch` checkouts. Forward additionally batches
//! all images of a band into one GEMM whose virtual columns are indexed
//! `(image, oh, ow)` — the per-worker-band batched GEMM the engine's
//! cycle execution benefits from — with a geometry-aware writeback that
//! also applies the fused activation on the final `KC` slab.
//!
//! # Determinism
//!
//! Each output element accumulates in pure ascending-k order, rounded
//! only at fixed `KC` boundaries — independent of the element's position
//! within a tile, of its neighbours, and of how a dispatcher bands rows,
//! columns or images. Both micro-kernels are therefore bit-deterministic
//! run-to-run and under any banding; the AVX2 kernel's FMA contractions
//! mean portable and AVX2 outputs may differ in the last bits (each stays
//! within the ~1e-5 relative parity bound of `Reference`).

use super::blocked::Blocked;
use super::{BackendKind, FusedActivation, TensorBackend};
use crate::ops::conv::Conv2dGeometry;
use crate::ops::pool::PoolGeometry;

/// Micro-tile rows (register-resident output rows per kernel call).
const MR: usize = 6;
/// Micro-tile columns — two 8-lane AVX2 vectors.
const NR: usize = 16;
/// Shared-dimension slab width: the active B panel is `KC×NR` floats
/// (16 KiB), sized to sit in L1 while it is reused by every row panel.
const KC: usize = 256;

/// One micro-tile of output accumulators.
type Acc = [[f32; NR]; MR];

/// Elementwise/pool/matvec ops delegate to the `Blocked` kernels: they
/// are memory-bound, so tiling buys nothing over its fused lane loops.
const FALLBACK: Blocked = Blocked;

/// The instruction set the micro-kernel runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TiledIsa {
    /// Safe-Rust autovectorization-friendly kernel; runs anywhere.
    Portable,
    /// x86-64 AVX2+FMA intrinsics kernel.
    Avx2,
}

impl TiledIsa {
    /// Whether the host can execute this ISA's micro-kernel.
    pub fn available(self) -> bool {
        match self {
            TiledIsa::Portable => true,
            TiledIsa::Avx2 => avx2_available(),
        }
    }

    /// Every ISA the host can execute, portable first.
    pub fn available_on_host() -> Vec<TiledIsa> {
        let mut isas = vec![TiledIsa::Portable];
        if TiledIsa::Avx2.available() {
            isas.push(TiledIsa::Avx2);
        }
        isas
    }

    /// Canonical lowercase name (what `GRADSEC_TILED_ISA` matches).
    pub fn name(self) -> &'static str {
        match self {
            TiledIsa::Portable => "portable",
            TiledIsa::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for TiledIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The register-tiled kernel set (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Tiled {
    pinned: Option<TiledIsa>,
}

impl Tiled {
    /// The auto-selecting instance `BackendKind::Tiled` resolves to:
    /// honours `GRADSEC_TILED_ISA`, otherwise detects the best ISA.
    pub const fn auto() -> Self {
        Tiled { pinned: None }
    }

    /// An instance pinned to one ISA (used by the parity tests to
    /// compare the portable and AVX2 paths in-process). A pinned ISA the
    /// host cannot execute still falls back to portable.
    pub fn with_isa(isa: TiledIsa) -> Self {
        Tiled { pinned: Some(isa) }
    }

    /// The ISA this instance's kernels will actually run on, resolving
    /// pin → environment override → host detection, and degrading any
    /// unavailable choice to portable.
    pub fn isa(&self) -> TiledIsa {
        let wanted = self.pinned.or_else(env_isa).unwrap_or({
            if avx2_available() {
                TiledIsa::Avx2
            } else {
                TiledIsa::Portable
            }
        });
        if wanted.available() {
            wanted
        } else {
            TiledIsa::Portable
        }
    }
}

fn env_isa() -> Option<TiledIsa> {
    match std::env::var("GRADSEC_TILED_ISA")
        .ok()?
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "portable" => Some(TiledIsa::Portable),
        "avx2" => Some(TiledIsa::Avx2),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Micro-kernels
// ---------------------------------------------------------------------------

/// Portable 6×16 micro-kernel: `acc += A_panel · B_panel` over `kc`
/// steps, with `A` packed `kc×MR` (one tile row per element) and `B`
/// packed `kc×NR`. The fixed-width inner loops over `NR` are what the
/// autovectorizer needs to emit full-width SIMD for the baseline target.
fn kernel_portable(kc: usize, a: &[f32], b: &[f32], acc: &mut Acc) {
    debug_assert!(a.len() >= kc * MR);
    debug_assert!(b.len() >= kc * NR);
    for kk in 0..kc {
        let ap = &a[kk * MR..kk * MR + MR];
        let bp = &b[kk * NR..kk * NR + NR];
        for (row, &aik) in acc.iter_mut().zip(ap) {
            for (c, &bkj) in row.iter_mut().zip(bp) {
                *c += aik * bkj;
            }
        }
    }
}

/// The crate's single `unsafe` island: the AVX2+FMA micro-kernel.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::{Acc, MR, NR};
    use std::arch::x86_64::{
        __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// AVX2+FMA 6×16 micro-kernel: the whole tile lives in twelve YMM
    /// accumulators; each k step broadcasts one packed A element per row
    /// and issues two FMAs against the packed B row.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the host supports AVX2 and FMA, and
    /// that `a.len() >= kc * MR` and `b.len() >= kc * NR` (both also
    /// debug-asserted).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn kernel_6x16(kc: usize, a: &[f32], b: &[f32], acc: &mut Acc) {
        debug_assert!(a.len() >= kc * MR);
        debug_assert!(b.len() >= kc * NR);
        // SAFETY: every pointer below stays inside `a`, `b` or `acc`:
        // the k loop advances `ap` by MR and `bp` by NR exactly `kc`
        // times, within the lengths asserted above, and each acc row is
        // a [f32; NR] giving the two loads/stores 8+8 in-bounds lanes.
        unsafe {
            let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
            for (cr, ar) in c.iter_mut().zip(acc.iter()) {
                cr[0] = _mm256_loadu_ps(ar.as_ptr());
                cr[1] = _mm256_loadu_ps(ar.as_ptr().add(8));
            }
            let mut ap = a.as_ptr();
            let mut bp = b.as_ptr();
            for _ in 0..kc {
                let b0 = _mm256_loadu_ps(bp);
                let b1 = _mm256_loadu_ps(bp.add(8));
                for (i, cr) in c.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*ap.add(i));
                    cr[0] = _mm256_fmadd_ps(av, b0, cr[0]);
                    cr[1] = _mm256_fmadd_ps(av, b1, cr[1]);
                }
                ap = ap.add(MR);
                bp = bp.add(NR);
            }
            for (cr, ar) in c.iter().zip(acc.iter_mut()) {
                _mm256_storeu_ps(ar.as_mut_ptr(), cr[0]);
                _mm256_storeu_ps(ar.as_mut_ptr().add(8), cr[1]);
            }
        }
    }
}

/// Runs one micro-tile on the resolved ISA.
#[inline]
fn run_kernel(isa: TiledIsa, kc: usize, a: &[f32], b: &[f32], acc: &mut Acc) {
    match isa {
        TiledIsa::Portable => kernel_portable(kc, a, b, acc),
        TiledIsa::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `TiledIsa::Avx2` is only ever resolved by
            // `Tiled::isa()` when `is_x86_feature_detected!` confirmed
            // AVX2+FMA on this host; panel lengths are upheld by the
            // driver, which sizes them `kc*MR`/`kc*NR` exactly.
            #[allow(unsafe_code)]
            unsafe {
                avx2::kernel_6x16(kc, a, b, acc)
            }
            #[cfg(not(target_arch = "x86_64"))]
            kernel_portable(kc, a, b, acc)
        }
    }
}

// ---------------------------------------------------------------------------
// GEMM driver
// ---------------------------------------------------------------------------

/// The shared tile driver: `C (m×n) ⊕= A (m×k) · B (k×n)` where all
/// three operands are *virtual* — `pack_a`/`pack_b` gather panel slabs
/// from whatever layout the op has (strided matrices, conv patch taps)
/// and `writeback` lands each finished tile wherever the op's output
/// lives (dense rows, `NCHW` feature maps, scattered `dinput` taps).
///
/// Loop order is `KC` slab → column strip → row panel, so each B panel
/// is packed once and reused by every row panel while L1-resident, and
/// the packed A slab is built once per `KC` slab. `writeback` receives
/// `(i0, rows, j0, cols, acc, first, last)`: `first`/`last` flag the
/// `KC` slab so overwrite-style ops can seed on the first partial and
/// fused activations can fire on the last.
///
/// Packers must fill `dst[step * MR + r]` (A) / `dst[step * NR + c]`
/// (B) for every in-range row/column; the driver pre-zeroes panels with
/// out-of-range padding lanes.
#[allow(clippy::too_many_arguments)]
fn gemm<PA, PB, WB>(
    isa: TiledIsa,
    m: usize,
    k: usize,
    n: usize,
    mut pack_a: PA,
    mut pack_b: PB,
    mut writeback: WB,
) where
    PA: FnMut(usize, usize, usize, usize, &mut [f32]),
    PB: FnMut(usize, usize, usize, usize, &mut [f32]),
    WB: FnMut(usize, usize, usize, usize, &Acc, bool, bool),
{
    if m == 0 || n == 0 {
        return;
    }
    let row_panels = m.div_ceil(MR);
    let slabs = k.div_ceil(KC).max(1);
    let mut packed_a = vec![0.0f32; row_panels * MR * KC.min(k.max(1))];
    let mut b_panel = [0.0f32; KC * NR];
    for slab in 0..slabs {
        let kc0 = slab * KC;
        let kc_len = KC.min(k - kc0);
        let first = slab == 0;
        let last = slab == slabs - 1;
        for pi in 0..row_panels {
            let i0 = pi * MR;
            let rows = MR.min(m - i0);
            let dst = &mut packed_a[pi * MR * kc_len..(pi + 1) * MR * kc_len];
            if rows < MR {
                dst.fill(0.0);
            }
            pack_a(i0, rows, kc0, kc_len, dst);
        }
        let mut j0 = 0;
        while j0 < n {
            let cols = NR.min(n - j0);
            let bp = &mut b_panel[..kc_len * NR];
            if cols < NR {
                bp.fill(0.0);
            }
            pack_b(j0, cols, kc0, kc_len, bp);
            for pi in 0..row_panels {
                let i0 = pi * MR;
                let rows = MR.min(m - i0);
                let ap = &packed_a[pi * MR * kc_len..(pi + 1) * MR * kc_len];
                let mut acc = [[0.0f32; NR]; MR];
                run_kernel(isa, kc_len, ap, bp, &mut acc);
                writeback(i0, rows, j0, cols, &acc, first, last);
            }
            j0 += cols;
        }
    }
}

/// A-panel packer for a strided matrix: element `(i, kk)` lives at
/// `src[i*rs + kk*cs]` (`rs`=row stride, `cs`=k stride), so one closure
/// covers row-major A (`rs=k, cs=1`) and transposed A (`rs=1, cs=m`).
fn pack_a_strided(
    src: &[f32],
    rs: usize,
    cs: usize,
) -> impl FnMut(usize, usize, usize, usize, &mut [f32]) + '_ {
    move |i0, rows, kc0, kc_len, dst: &mut [f32]| {
        for r in 0..rows {
            let base = (i0 + r) * rs + kc0 * cs;
            for kk in 0..kc_len {
                dst[kk * MR + r] = src[base + kk * cs];
            }
        }
    }
}

/// B-panel packer for a strided matrix: element `(kk, j)` lives at
/// `src[kk*rs + j*cs]`.
fn pack_b_strided(
    src: &[f32],
    rs: usize,
    cs: usize,
) -> impl FnMut(usize, usize, usize, usize, &mut [f32]) + '_ {
    move |j0, cols, kc0, kc_len, dst: &mut [f32]| {
        for kk in 0..kc_len {
            let base = (kc0 + kk) * rs + j0 * cs;
            let row = &mut dst[kk * NR..kk * NR + cols];
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = src[base + c * cs];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Convolution geometry helpers
// ---------------------------------------------------------------------------

/// Walks the virtual batched column index `gc = img·(OH·OW) + oh·OW + ow`.
#[derive(Clone, Copy)]
struct ColCursor {
    img: usize,
    oh: usize,
    ow: usize,
}

impl ColCursor {
    fn at(gc: usize, geo: &Conv2dGeometry) -> Self {
        let cols = geo.out_h * geo.out_w;
        ColCursor {
            img: gc / cols,
            oh: (gc % cols) / geo.out_w,
            ow: gc % geo.out_w,
        }
    }

    #[inline]
    fn advance(&mut self, geo: &Conv2dGeometry) {
        self.ow += 1;
        if self.ow == geo.out_w {
            self.ow = 0;
            self.oh += 1;
            if self.oh == geo.out_h {
                self.oh = 0;
                self.img += 1;
            }
        }
    }
}

/// Per-`kk` patch coordinates: the channel base offset into one image
/// plus the kernel tap `(ki, kj)` — precomputed once per backward call
/// so the transposed gathers avoid divisions in their inner loops.
fn tap_table(geo: &Conv2dGeometry) -> Vec<(usize, usize, usize)> {
    let k = geo.kernel;
    let mut taps = Vec::with_capacity(geo.in_channels * k * k);
    for c in 0..geo.in_channels {
        for ki in 0..k {
            for kj in 0..k {
                taps.push((c * geo.in_h * geo.in_w, ki, kj));
            }
        }
    }
    taps
}

/// The input tap for patch row `kk` at output position `(oh, ow)`, or
/// zero when the tap lands in the padding ring.
#[inline]
fn tap(
    image: &[f32],
    geo: &Conv2dGeometry,
    chan_base: usize,
    ki: usize,
    kj: usize,
    oh: usize,
    ow: usize,
) -> f32 {
    let ih = (oh * geo.stride + ki) as isize - geo.pad as isize;
    let iw = (ow * geo.stride + kj) as isize - geo.pad as isize;
    if ih < 0 || ih as usize >= geo.in_h || iw < 0 || iw as usize >= geo.in_w {
        0.0
    } else {
        image[chan_base + ih as usize * geo.in_w + iw as usize]
    }
}

// ---------------------------------------------------------------------------
// The backend
// ---------------------------------------------------------------------------

impl Tiled {
    /// Band-batched forward convolution through the virtual-im2col GEMM:
    /// `Z (F × N·OH·OW) = W · col(input) + b`, with `act(Z)` written to
    /// `a_out` during the final slab writeback when `a_out` is non-empty
    /// (the fused path; the unfused path passes an empty slice).
    #[allow(clippy::too_many_arguments)] // mirrors the TensorBackend fused-hook signature
    fn conv_forward_core(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        z: &mut [f32],
        a_out: &mut [f32],
        act: FusedActivation,
        geo: &Conv2dGeometry,
    ) {
        let isa = self.isa();
        let k2 = geo.in_channels * geo.kernel * geo.kernel;
        let cols = geo.out_h * geo.out_w;
        let n_imgs = input.len() / geo.in_len();
        let in_len = geo.in_len();
        let out_len = geo.out_len();
        let fused = !a_out.is_empty();
        let k = geo.kernel;
        let kk2 = k * k;
        gemm(
            isa,
            geo.out_channels,
            k2,
            n_imgs * cols,
            pack_a_strided(weights, k2, 1),
            |j0, cols_take, kc0, kc_len, dst: &mut [f32]| {
                // Virtual im2col: gather the patch taps for `cols_take`
                // consecutive batched columns straight into the panel.
                for step in 0..kc_len {
                    let kk = kc0 + step;
                    let chan_base = (kk / kk2) * geo.in_h * geo.in_w;
                    let ki = (kk % kk2) / k;
                    let kj = kk % k;
                    let mut cur = ColCursor::at(j0, geo);
                    let row = &mut dst[step * NR..step * NR + cols_take];
                    for slot in row.iter_mut() {
                        let image = &input[cur.img * in_len..(cur.img + 1) * in_len];
                        *slot = tap(image, geo, chan_base, ki, kj, cur.oh, cur.ow);
                        cur.advance(geo);
                    }
                }
            },
            |i0, rows, j0, cols_take, acc: &Acc, slab_first, slab_last| {
                for (r, arow) in acc.iter().enumerate().take(rows) {
                    let f = i0 + r;
                    let b = bias[f];
                    let mut cur = ColCursor::at(j0, geo);
                    for &av in arow.iter().take(cols_take) {
                        let zi = cur.img * out_len + f * cols + cur.oh * geo.out_w + cur.ow;
                        let v = if slab_first { b + av } else { z[zi] + av };
                        z[zi] = v;
                        if fused && slab_last {
                            a_out[zi] = act.apply(v);
                        }
                        cur.advance(geo);
                    }
                }
            },
        );
    }
}

impl TensorBackend for Tiled {
    fn kind(&self) -> BackendKind {
        BackendKind::Tiled
    }

    fn matmul(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let isa = self.isa();
        gemm(
            isa,
            m,
            k,
            n,
            pack_a_strided(a, k, 1),
            pack_b_strided(b, n, 1),
            |i0, rows, j0, cols, acc: &Acc, _, _| {
                for (r, arow) in acc.iter().enumerate().take(rows) {
                    let crow = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + cols];
                    for (cj, &av) in crow.iter_mut().zip(arow) {
                        *cj += av;
                    }
                }
            },
        );
    }

    fn matmul_nt(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let isa = self.isa();
        gemm(
            isa,
            m,
            k,
            n,
            pack_a_strided(a, k, 1),
            pack_b_strided(b, 1, k),
            |i0, rows, j0, cols, acc: &Acc, first, _| {
                for (r, arow) in acc.iter().enumerate().take(rows) {
                    let crow = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + cols];
                    for (cj, &av) in crow.iter_mut().zip(arow) {
                        *cj = if first { av } else { *cj + av };
                    }
                }
            },
        );
    }

    fn matmul_tn(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let isa = self.isa();
        gemm(
            isa,
            m,
            k,
            n,
            pack_a_strided(a, 1, m),
            pack_b_strided(b, n, 1),
            |i0, rows, j0, cols, acc: &Acc, _, _| {
                for (r, arow) in acc.iter().enumerate().take(rows) {
                    let crow = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + cols];
                    for (cj, &av) in crow.iter_mut().zip(arow) {
                        *cj += av;
                    }
                }
            },
        );
    }

    fn matvec(&self, a: &[f32], x: &[f32], y: &mut [f32], m: usize, k: usize) {
        // A single output column wastes 15/16 of the tile; the blocked
        // lane reduction is the right kernel for matvec.
        FALLBACK.matvec(a, x, y, m, k);
    }

    fn conv2d_forward(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        out: &mut [f32],
        geo: &Conv2dGeometry,
    ) {
        self.conv_forward_core(
            input,
            weights,
            bias,
            out,
            &mut [],
            FusedActivation::Identity,
            geo,
        );
    }

    fn conv2d_forward_fused(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        z: &mut [f32],
        a: &mut [f32],
        act: FusedActivation,
        geo: &Conv2dGeometry,
    ) {
        self.conv_forward_core(input, weights, bias, z, a, act, geo);
    }

    fn conv2d_backward(
        &self,
        input: &[f32],
        weights: &[f32],
        delta_out: &[f32],
        dw: &mut [f32],
        db: &mut [f32],
        dinput: &mut [f32],
        geo: &Conv2dGeometry,
    ) {
        let isa = self.isa();
        let k2 = geo.in_channels * geo.kernel * geo.kernel;
        let cols = geo.out_h * geo.out_w;
        let n_imgs = input.len() / geo.in_len();
        let gc_total = n_imgs * cols;
        let in_len = geo.in_len();
        let out_len = geo.out_len();
        let taps = tap_table(geo);

        // dW (F × k2) += Δ (F × gc) · colᵀ (gc × k2): the batched error
        // matrix is gathered by geometry, the transposed virtual im2col
        // by the tap table — still no materialised column buffer.
        gemm(
            isa,
            geo.out_channels,
            gc_total,
            k2,
            |i0, rows, kc0, kc_len, dst: &mut [f32]| {
                for r in 0..rows {
                    let f = i0 + r;
                    let mut cur = ColCursor::at(kc0, geo);
                    for step in 0..kc_len {
                        dst[step * MR + r] =
                            delta_out[cur.img * out_len + f * cols + cur.oh * geo.out_w + cur.ow];
                        cur.advance(geo);
                    }
                }
            },
            |j0, cols_take, kc0, kc_len, dst: &mut [f32]| {
                for step in 0..kc_len {
                    let mut cur = ColCursor::at(kc0 + step, geo);
                    // One batched column per panel row; `cur` is fixed
                    // here and the taps vary instead.
                    let image = &input[cur.img * in_len..(cur.img + 1) * in_len];
                    let row = &mut dst[step * NR..step * NR + cols_take];
                    for (c, slot) in row.iter_mut().enumerate() {
                        let (chan_base, ki, kj) = taps[j0 + c];
                        *slot = tap(image, geo, chan_base, ki, kj, cur.oh, cur.ow);
                    }
                    let _ = &mut cur;
                }
            },
            |i0, rows, j0, cols_take, acc: &Acc, _, _| {
                for (r, arow) in acc.iter().enumerate().take(rows) {
                    let dwrow = &mut dw[(i0 + r) * k2 + j0..(i0 + r) * k2 + j0 + cols_take];
                    for (dj, &av) in dwrow.iter_mut().zip(arow) {
                        *dj += av;
                    }
                }
            },
        );

        // db (F) += Σ batch+spatial Δ.
        for (f, dbf) in db.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for img in 0..n_imgs {
                let drow = &delta_out[img * out_len + f * cols..img * out_len + (f + 1) * cols];
                for &d in drow {
                    acc += d;
                }
            }
            *dbf += acc;
        }

        // dInput: dcol (k2 × gc) = Wᵀ · Δ in one band-batched GEMM (the
        // transposed weights pack once for all images), landed in a
        // plain per-call `Vec` blocked per image — deliberately *not* a
        // `backend::scratch` checkout — then folded into image space by
        // the canonical `col2im` scatter. Scattering per image in
        // canonical tap order (rather than per GEMM tile) keeps `dinput`
        // bit-identical under any batch banding: overlapping taps always
        // accumulate in the same order.
        let col_len = k2 * cols;
        let mut dcol = vec![0.0f32; n_imgs * col_len];
        gemm(
            isa,
            k2,
            geo.out_channels,
            gc_total,
            pack_a_strided(weights, 1, k2),
            |j0, cols_take, kc0, kc_len, dst: &mut [f32]| {
                for step in 0..kc_len {
                    let f = kc0 + step;
                    let mut cur = ColCursor::at(j0, geo);
                    let row = &mut dst[step * NR..step * NR + cols_take];
                    for slot in row.iter_mut() {
                        *slot =
                            delta_out[cur.img * out_len + f * cols + cur.oh * geo.out_w + cur.ow];
                        cur.advance(geo);
                    }
                }
            },
            |i0, rows, j0, cols_take, acc: &Acc, first, _| {
                for (r, arow) in acc.iter().enumerate().take(rows) {
                    let kk2 = i0 + r;
                    let mut cur = ColCursor::at(j0, geo);
                    for &av in arow.iter().take(cols_take) {
                        let di = cur.img * col_len + kk2 * cols + cur.oh * geo.out_w + cur.ow;
                        dcol[di] = if first { av } else { dcol[di] + av };
                        cur.advance(geo);
                    }
                }
            },
        );
        for img in 0..n_imgs {
            crate::ops::conv::col2im(
                &dcol[img * col_len..(img + 1) * col_len],
                geo,
                &mut dinput[img * in_len..(img + 1) * in_len],
            );
        }
    }

    fn maxpool_forward(
        &self,
        input: &[f32],
        out: &mut [f32],
        argmax: &mut [u32],
        n: usize,
        geo: &PoolGeometry,
    ) {
        FALLBACK.maxpool_forward(input, out, argmax, n, geo);
    }

    fn maxpool_backward(
        &self,
        delta_out: &[f32],
        argmax: &[u32],
        dinput: &mut [f32],
        n: usize,
        geo: &PoolGeometry,
    ) {
        FALLBACK.maxpool_backward(delta_out, argmax, dinput, n, geo);
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        FALLBACK.axpy(alpha, x, y);
    }

    fn hadamard(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        FALLBACK.hadamard(a, b, out);
    }

    fn scale(&self, s: f32, a: &[f32], out: &mut [f32]) {
        FALLBACK.scale(s, a, out);
    }

    fn sum(&self, xs: &[f32]) -> f32 {
        FALLBACK.sum(xs)
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        FALLBACK.dot(a, b)
    }

    fn dense_forward_fused(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        z: &mut [f32],
        a: &mut [f32],
        act: FusedActivation,
        m: usize,
        k: usize,
        n: usize,
    ) {
        let isa = self.isa();
        let fused = !a.is_empty();
        gemm(
            isa,
            m,
            k,
            n,
            pack_a_strided(input, k, 1),
            pack_b_strided(weights, 1, k),
            |i0, rows, j0, cols, acc: &Acc, first, last| {
                for (r, arow) in acc.iter().enumerate().take(rows) {
                    let base = (i0 + r) * n + j0;
                    for (c, &av) in arow.iter().enumerate().take(cols) {
                        let v = if first {
                            bias[j0 + c] + av
                        } else {
                            z[base + c] + av
                        };
                        z[base + c] = v;
                        if fused && last {
                            a[base + c] = act.apply(v);
                        }
                    }
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_resolution_prefers_pin_then_env_then_detect() {
        assert_eq!(
            Tiled::with_isa(TiledIsa::Portable).isa(),
            TiledIsa::Portable
        );
        let auto = Tiled::auto().isa();
        assert!(auto.available());
        let isas = TiledIsa::available_on_host();
        assert_eq!(isas[0], TiledIsa::Portable);
        assert!(isas.contains(&auto));
        // Pinning AVX2 either gets AVX2 (host has it) or degrades.
        let pinned = Tiled::with_isa(TiledIsa::Avx2).isa();
        if TiledIsa::Avx2.available() {
            assert_eq!(pinned, TiledIsa::Avx2);
        } else {
            assert_eq!(pinned, TiledIsa::Portable);
        }
    }

    #[test]
    fn isa_names_roundtrip_display() {
        assert_eq!(TiledIsa::Portable.to_string(), "portable");
        assert_eq!(TiledIsa::Avx2.to_string(), "avx2");
    }

    /// The micro-kernels must agree with a plain triple loop on exact
    /// dyadic inputs (no rounding differences possible), tile padding
    /// included.
    #[test]
    fn microkernels_match_naive_on_dyadic_inputs() {
        let kc = 37;
        let a: Vec<f32> = (0..kc * MR).map(|i| ((i % 7) as f32) * 0.5).collect();
        let b: Vec<f32> = (0..kc * NR)
            .map(|i| ((i % 5) as f32) * 0.25 - 0.5)
            .collect();
        let mut want = [[0.0f32; NR]; MR];
        for kk in 0..kc {
            for (i, row) in want.iter_mut().enumerate() {
                for (j, c) in row.iter_mut().enumerate() {
                    *c += a[kk * MR + i] * b[kk * NR + j];
                }
            }
        }
        for isa in TiledIsa::available_on_host() {
            let mut acc = [[0.0f32; NR]; MR];
            run_kernel(isa, kc, &a, &b, &mut acc);
            assert_eq!(acc, want, "{isa} kernel diverged");
        }
    }

    /// The same GEMM sliced into different row/column bands must be
    /// bit-identical — the property the dispatchers' machine-dependent
    /// banding relies on.
    #[test]
    fn tile_position_does_not_change_results() {
        let (m, k, n) = (13, 300, 23); // crosses a KC slab boundary
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 31 % 17) as f32 - 8.0) / 8.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 13 % 19) as f32 - 9.0) / 9.0)
            .collect();
        for isa in TiledIsa::available_on_host() {
            let t = Tiled::with_isa(isa);
            let mut full = vec![0.0f32; m * n];
            t.matmul(&a, &b, &mut full, m, k, n);
            for split in [1usize, 5, 7] {
                let mut banded = vec![0.0f32; m * n];
                let (lo, hi) = banded.split_at_mut(split * n);
                t.matmul(&a[..split * k], &b, lo, split, k, n);
                t.matmul(&a[split * k..], &b, hi, m - split, k, n);
                assert_eq!(full, banded, "{isa} row split {split} diverged");
            }
        }
    }
}
