use std::fmt;

/// Errors produced by tensor construction and tensor operations.
///
/// All variants carry enough context to diagnose the failing call without a
/// debugger; messages are lowercase without trailing punctuation per Rust API
/// guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of provided elements does not match the requested shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Human-readable operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The operation requires a tensor of a different rank.
    RankMismatch {
        /// Human-readable operation name.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Provided rank.
        actual: usize,
    },
    /// An index is out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// Convolution / pooling geometry is impossible (e.g. kernel larger than
    /// the padded input, or a stride of zero).
    BadGeometry {
        /// Human-readable description of the geometric inconsistency.
        reason: String,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Source element count.
        from: usize,
        /// Target element count.
        to: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "length mismatch: shape requires {expected} elements, got {actual}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(
                f,
                "rank mismatch in {op}: expected {expected}, got {actual}"
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::BadGeometry { reason } => write!(f, "bad geometry: {reason}"),
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "cannot reshape {from} elements into {to} elements")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4, 5]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn errors_compare_equal() {
        let a = TensorError::ReshapeMismatch { from: 4, to: 5 };
        let b = TensorError::ReshapeMismatch { from: 4, to: 5 };
        assert_eq!(a, b);
    }
}
