//! Seeded weight initialisers.
//!
//! All initialisers take an explicit RNG so that every experiment in the
//! reproduction is bit-for-bit repeatable from a `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::Tensor;

/// Returns a tensor with elements drawn i.i.d. from `U(lo, hi)`.
///
/// # Example
///
/// ```
/// use gradsec_tensor::init;
///
/// let t = init::uniform(&[4, 4], -0.5, 0.5, 42);
/// assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
/// ```
pub fn uniform(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = rng.random_range(lo..hi);
    }
    t
}

/// Returns a tensor with elements drawn i.i.d. from `N(mean, std²)`,
/// using the Box–Muller transform (no external distribution crates).
pub fn normal(dims: &[usize], mean: f32, std: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tensor::zeros(dims);
    fill_normal(t.data_mut(), mean, std, &mut rng);
    t
}

/// Fills `buf` with `N(mean, std²)` samples from an existing RNG.
pub fn fill_normal<R: Rng>(buf: &mut [f32], mean: f32, std: f32, rng: &mut R) {
    let mut i = 0;
    while i < buf.len() {
        let (z0, z1) = box_muller(rng);
        buf[i] = mean + std * z0;
        i += 1;
        if i < buf.len() {
            buf[i] = mean + std * z1;
            i += 1;
        }
    }
}

/// One Box–Muller draw: two independent standard normal samples.
fn box_muller<R: Rng>(rng: &mut R) -> (f32, f32) {
    // Avoid u1 == 0 so ln() stays finite.
    let u1: f32 = loop {
        let u: f32 = rng.random();
        if u > f32::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f32 = rng.random();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Xavier/Glorot uniform initialisation: `U(±sqrt(6/(fan_in+fan_out)))`.
///
/// Used for the dense layers of LeNet-5 and AlexNet.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(dims, -limit, limit, seed)
}

/// He (Kaiming) normal initialisation: `N(0, 2/fan_in)`.
///
/// Used for the convolutional layers (ReLU activations).
pub fn he_normal(dims: &[usize], fan_in: usize, seed: u64) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(dims, 0.0, std, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(&[1000], -1.0, 1.0, 7);
        assert!(t.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = normal(&[64], 0.0, 1.0, 123);
        let b = normal(&[64], 0.0, 1.0, 123);
        let c = normal(&[64], 0.0, 1.0, 124);
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let t = normal(&[20000], 2.0, 3.0, 99);
        let n = t.numel() as f32;
        let mean: f32 = t.data().iter().sum::<f32>() / n;
        let var: f32 = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n;
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 9.0).abs() < 0.5, "var was {var}");
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let small_fan = xavier_uniform(&[100], 2, 2, 1);
        let large_fan = xavier_uniform(&[100], 2000, 2000, 1);
        let max_small = small_fan.data().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let max_large = large_fan.data().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        assert!(max_small > max_large);
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let t = he_normal(&[10000], 50, 5);
        let n = t.numel() as f32;
        let var: f32 = t.data().iter().map(|x| x * x).sum::<f32>() / n;
        assert!((var - 2.0 / 50.0).abs() < 0.01, "var was {var}");
    }
}
