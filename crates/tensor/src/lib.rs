//! # gradsec-tensor
//!
//! Dense `f32` tensor math substrate for the GradSec reproduction
//! (Middleware '22, *Shielding Federated Learning Systems against Inference
//! Attacks with ARM TrustZone*).
//!
//! The paper builds GradSec on top of DarkneTZ, which in turn builds on the
//! Darknet neural-network framework (plain C, dense float math). This crate
//! is the equivalent substrate, implemented from scratch:
//!
//! * [`Shape`] — row-major shapes with stride computation,
//! * [`Tensor`] — owned dense `f32` tensors with elementwise algebra,
//! * [`backend`] — pluggable kernel backends behind the [`TensorBackend`]
//!   trait: [`BackendKind::Reference`] (the bit-identical default),
//!   [`BackendKind::Blocked`] (cache-blocked autovectorization-friendly
//!   kernels) and [`BackendKind::Tiled`] (register-tiled GEMM micro-kernels
//!   with virtual-im2col convolutions and a runtime-dispatched AVX2+FMA
//!   path),
//! * [`ops::matmul`] — blocked and multi-threaded matrix products,
//! * [`ops::conv`] — im2col/col2im 2-D convolutions (forward and both
//!   backward passes), the workhorse of LeNet-5 and AlexNet,
//! * [`ops::pool`] — 2×2 max-pooling with argmax bookkeeping,
//! * [`init`] — seeded Xavier/He initialisers used by the NN crate.
//!
//! Everything is deterministic given a seed; no global RNG state is used.
//! Each backend is individually deterministic too: within one
//! [`BackendKind`], identical inputs produce bit-identical outputs on any
//! machine.
//!
//! # Example
//!
//! ```
//! use gradsec_tensor::{Tensor, ops::matmul};
//!
//! # fn main() -> Result<(), gradsec_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = matmul::matmul(&a, &b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// `backend::tiled` AVX2 micro-kernel island, which opts back in with a
// scoped `#[allow(unsafe_code)]` and documents its safety contract.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod error;
pub mod init;
pub mod ops;
mod shape;
mod tensor;

pub use backend::{BackendKind, TensorBackend};
pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias using [`TensorError`].
pub type Result<T> = std::result::Result<T, TensorError>;
