//! 2-D convolution via im2col/col2im.
//!
//! Layout conventions (matching Darknet, the substrate of DarkneTZ):
//!
//! * inputs/outputs are `NCHW` tensors,
//! * weights are `(F, C·K·K)` matrices (one row per output filter),
//! * geometry uses Darknet's floor rule
//!   `out = (in + 2·pad − k) / stride + 1` (integer division),
//!   which yields exactly the layer shapes of the paper's Table 4.
//!
//! Three passes are provided: [`conv2d_forward`], and a combined
//! [`conv2d_backward`] returning `(dW, db, dInput)` per the paper's
//! equation (4): `dW_l = δ_l ⊗ A_{l−1}`.
//!
//! The functions here are *dispatchers*: shape checks, output allocation
//! and thread banding live here, while the per-band kernels come from a
//! [`TensorBackend`](crate::backend::TensorBackend) — the default
//! [`BackendKind::Reference`] for the plain entry points or any backend
//! via the `*_with` variants. Both passes split the batch dimension
//! across scoped threads once the per-batch im2col volume crosses
//! [`PARALLEL_THRESHOLD`] — the scoped banding pattern of `ops::matmul`.
//! Each image's computation is independent, so the forward pass is
//! bit-identical to the sequential loop under any banding. The backward
//! pass reduces per-band `dW`/`db` partials in band order, so — unlike
//! `matmul`, whose disjoint output rows make any band count safe — the
//! band count must **not** depend on the machine: bands are a fixed
//! [`IMAGES_PER_BAND`] images wide, making the reduction grouping a pure
//! function of the batch size. (This also bounds the threads a nested
//! caller — e.g. a federation engine worker — can fan out per pass.)

use crate::backend::{BackendKind, FusedActivation};
use crate::{Result, Tensor, TensorError};

/// Batches whose total im2col volume (elements) is below this run
/// single-threaded; spawning workers costs more than it saves.
const PARALLEL_THRESHOLD: usize = 64 * 64;

/// Fixed band width in images. Machine-independent so seeded training
/// results are reproducible across hosts with different core counts.
const IMAGES_PER_BAND: usize = 4;

/// Number of image bands for a batch of `n` images with per-image im2col
/// volume `col_len`.
fn conv_bands(n: usize, col_len: usize) -> usize {
    if n < 2 || n * col_len < PARALLEL_THRESHOLD {
        return 1;
    }
    n.div_ceil(IMAGES_PER_BAND)
}

/// Validated convolution geometry shared by the forward and backward passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channel count `C`.
    pub in_channels: usize,
    /// Input height `H`.
    pub in_h: usize,
    /// Input width `W`.
    pub in_w: usize,
    /// Output filter count `F`.
    pub out_channels: usize,
    /// Square kernel edge `K`.
    pub kernel: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Zero padding (same on all four sides).
    pub pad: usize,
    /// Computed output height.
    pub out_h: usize,
    /// Computed output width.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Computes and validates a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] when the stride is zero or the
    /// kernel does not fit in the padded input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self> {
        if stride == 0 {
            return Err(TensorError::BadGeometry {
                reason: "stride must be non-zero".to_owned(),
            });
        }
        if kernel == 0 || out_channels == 0 || in_channels == 0 {
            return Err(TensorError::BadGeometry {
                reason: "kernel, in_channels and out_channels must be non-zero".to_owned(),
            });
        }
        if in_h + 2 * pad < kernel || in_w + 2 * pad < kernel {
            return Err(TensorError::BadGeometry {
                reason: format!(
                    "kernel {kernel} larger than padded input {}x{}",
                    in_h + 2 * pad,
                    in_w + 2 * pad
                ),
            });
        }
        let out_h = (in_h + 2 * pad - kernel) / stride + 1;
        let out_w = (in_w + 2 * pad - kernel) / stride + 1;
        Ok(Conv2dGeometry {
            in_channels,
            in_h,
            in_w,
            out_channels,
            kernel,
            stride,
            pad,
            out_h,
            out_w,
        })
    }

    /// Elements in one image's im2col matrix: `(C·K·K) × (OH·OW)`.
    pub fn col_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel * self.out_h * self.out_w
    }

    /// Number of weights (excluding bias): `F·C·K·K`.
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }

    /// Elements in one input image: `C·H·W`.
    pub fn in_len(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    /// Elements in one output image: `F·OH·OW`.
    pub fn out_len(&self) -> usize {
        self.out_channels * self.out_h * self.out_w
    }
}

/// Expands one `C×H×W` image into its `(C·K·K) × (OH·OW)` column matrix.
///
/// Out-of-bounds taps (padding) contribute zeros. Every element of `col`
/// is written, which is what lets the backends reuse scratch buffers
/// across calls.
///
/// # Panics
///
/// Debug-asserts the buffer lengths; callers are internal and pre-size them.
pub fn im2col(input: &[f32], geo: &Conv2dGeometry, col: &mut [f32]) {
    debug_assert_eq!(input.len(), geo.in_len());
    debug_assert_eq!(col.len(), geo.col_len());
    let k = geo.kernel;
    let cols = geo.out_h * geo.out_w;
    for c in 0..geo.in_channels {
        let chan = &input[c * geo.in_h * geo.in_w..(c + 1) * geo.in_h * geo.in_w];
        for ki in 0..k {
            for kj in 0..k {
                let row = (c * k * k + ki * k + kj) * cols;
                for oh in 0..geo.out_h {
                    let ih = (oh * geo.stride + ki) as isize - geo.pad as isize;
                    let base = row + oh * geo.out_w;
                    if ih < 0 || ih as usize >= geo.in_h {
                        col[base..base + geo.out_w].fill(0.0);
                        continue;
                    }
                    let ih = ih as usize;
                    for ow in 0..geo.out_w {
                        let iw = (ow * geo.stride + kj) as isize - geo.pad as isize;
                        col[base + ow] = if iw < 0 || iw as usize >= geo.in_w {
                            0.0
                        } else {
                            chan[ih * geo.in_w + iw as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Scatters a column matrix back into image space, accumulating into
/// `input_grad` (the adjoint of [`im2col`]).
pub fn col2im(col: &[f32], geo: &Conv2dGeometry, input_grad: &mut [f32]) {
    debug_assert_eq!(input_grad.len(), geo.in_len());
    debug_assert_eq!(col.len(), geo.col_len());
    let k = geo.kernel;
    let cols = geo.out_h * geo.out_w;
    for c in 0..geo.in_channels {
        let chan = &mut input_grad[c * geo.in_h * geo.in_w..(c + 1) * geo.in_h * geo.in_w];
        for ki in 0..k {
            for kj in 0..k {
                let row = (c * k * k + ki * k + kj) * cols;
                for oh in 0..geo.out_h {
                    let ih = (oh * geo.stride + ki) as isize - geo.pad as isize;
                    if ih < 0 || ih as usize >= geo.in_h {
                        continue;
                    }
                    let ih = ih as usize;
                    let base = row + oh * geo.out_w;
                    for ow in 0..geo.out_w {
                        let iw = (ow * geo.stride + kj) as isize - geo.pad as isize;
                        if iw < 0 || iw as usize >= geo.in_w {
                            continue;
                        }
                        chan[ih * geo.in_w + iw as usize] += col[base + ow];
                    }
                }
            }
        }
    }
}

fn check_batch_input(input: &Tensor, geo: &Conv2dGeometry) -> Result<usize> {
    let d = input.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d",
            expected: 4,
            actual: d.len(),
        });
    }
    if d[1] != geo.in_channels || d[2] != geo.in_h || d[3] != geo.in_w {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: d.to_vec(),
            rhs: vec![0, geo.in_channels, geo.in_h, geo.in_w],
        });
    }
    Ok(d[0])
}

fn check_weights(weights: &Tensor, bias: &Tensor, geo: &Conv2dGeometry) -> Result<()> {
    let k2 = geo.in_channels * geo.kernel * geo.kernel;
    if weights.dims() != [geo.out_channels, k2] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d weights",
            lhs: weights.dims().to_vec(),
            rhs: vec![geo.out_channels, k2],
        });
    }
    if bias.dims() != [geo.out_channels] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d bias",
            lhs: bias.dims().to_vec(),
            rhs: vec![geo.out_channels],
        });
    }
    Ok(())
}

/// Convolution forward pass: `Z = W ⊛ A + b` over a batch, on the default
/// ([`BackendKind::Reference`]) backend.
///
/// `input` is `(N, C, H, W)`, `weights` is `(F, C·K·K)`, `bias` is `(F)`;
/// the result is `(N, F, OH, OW)`.
///
/// # Errors
///
/// Returns shape errors when any operand disagrees with `geo`.
pub fn conv2d_forward(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    geo: &Conv2dGeometry,
) -> Result<Tensor> {
    conv2d_forward_with(input, weights, bias, geo, BackendKind::Reference)
}

/// [`conv2d_forward`] through an explicit backend.
///
/// # Errors
///
/// Same contract as [`conv2d_forward`].
pub fn conv2d_forward_with(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    geo: &Conv2dGeometry,
    backend: BackendKind,
) -> Result<Tensor> {
    let n = check_batch_input(input, geo)?;
    check_weights(weights, bias, geo)?;
    let kernels = backend.kernels();
    let mut out = Tensor::zeros(&[n, geo.out_channels, geo.out_h, geo.out_w]);
    let bands = conv_bands(n, geo.col_len());
    if bands == 1 {
        kernels.conv2d_forward(
            input.data(),
            weights.data(),
            bias.data(),
            out.data_mut(),
            geo,
        );
    } else {
        // Split the batch into contiguous image bands, one scoped thread
        // each. Every image is computed exactly as in the sequential
        // loop, so the result is bit-identical under any banding.
        let per = n.div_ceil(bands);
        let (wd, bd, id) = (weights.data(), bias.data(), input.data());
        crossbeam::thread::scope(|s| {
            let mut rest = out.data_mut();
            let mut row = 0usize;
            while row < n {
                let take = per.min(n - row);
                let (band, tail) = rest.split_at_mut(take * geo.out_len());
                let in_band = &id[row * geo.in_len()..(row + take) * geo.in_len()];
                s.spawn(move |_| kernels.conv2d_forward(in_band, wd, bd, band, geo));
                rest = tail;
                row += take;
            }
        })
        .expect("conv2d forward worker panicked");
    }
    Ok(out)
}

/// Fused convolution + activation forward pass through an explicit
/// backend: returns `(Z, A)` where `Z = W ⊛ input + b` and
/// `A = act(Z)`, banded exactly like [`conv2d_forward_with`] (both
/// outputs split on the same image boundaries, so results are
/// bit-identical under any banding).
///
/// Backends without a fused kernel fall back to the trait's default
/// (unfused conv then an activation sweep), which reproduces the
/// historical `forward` + `apply_tensor` op order bit-for-bit; the
/// `Tiled` backend applies the activation inside its GEMM writeback.
///
/// # Errors
///
/// Same contract as [`conv2d_forward`].
pub fn conv2d_forward_fused_with(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    geo: &Conv2dGeometry,
    act: FusedActivation,
    backend: BackendKind,
) -> Result<(Tensor, Tensor)> {
    let n = check_batch_input(input, geo)?;
    check_weights(weights, bias, geo)?;
    let kernels = backend.kernels();
    let mut z = Tensor::zeros(&[n, geo.out_channels, geo.out_h, geo.out_w]);
    let mut a = Tensor::zeros(&[n, geo.out_channels, geo.out_h, geo.out_w]);
    let bands = conv_bands(n, geo.col_len());
    if bands == 1 {
        kernels.conv2d_forward_fused(
            input.data(),
            weights.data(),
            bias.data(),
            z.data_mut(),
            a.data_mut(),
            act,
            geo,
        );
    } else {
        let per = n.div_ceil(bands);
        let (wd, bd, id) = (weights.data(), bias.data(), input.data());
        crossbeam::thread::scope(|s| {
            let mut z_rest = z.data_mut();
            let mut a_rest = a.data_mut();
            let mut row = 0usize;
            while row < n {
                let take = per.min(n - row);
                let (z_band, z_tail) = z_rest.split_at_mut(take * geo.out_len());
                let (a_band, a_tail) = a_rest.split_at_mut(take * geo.out_len());
                let in_band = &id[row * geo.in_len()..(row + take) * geo.in_len()];
                s.spawn(move |_| {
                    kernels.conv2d_forward_fused(in_band, wd, bd, z_band, a_band, act, geo)
                });
                z_rest = z_tail;
                a_rest = a_tail;
                row += take;
            }
        })
        .expect("conv2d fused forward worker panicked");
    }
    Ok((z, a))
}

/// Convolution backward pass on the default backend.
///
/// Given the upstream error `delta_out = ∂Loss/∂Z` of shape `(N, F, OH, OW)`,
/// returns `(dW, db, dInput)` where
///
/// * `dW = Σ_img δ · colᵀ` — shape `(F, C·K·K)` (paper eq. 4,
///   `δ_l ⊗ A_{l−1}`),
/// * `db = Σ spatial+batch δ` — shape `(F)`,
/// * `dInput = col2im(Wᵀ · δ)` — shape `(N, C, H, W)` (the `W_{l+1} ⊗ δ_{l+1}`
///   term that propagates to the previous layer).
///
/// # Errors
///
/// Returns shape errors when any operand disagrees with `geo`.
pub fn conv2d_backward(
    input: &Tensor,
    weights: &Tensor,
    delta_out: &Tensor,
    geo: &Conv2dGeometry,
) -> Result<(Tensor, Tensor, Tensor)> {
    conv2d_backward_with(input, weights, delta_out, geo, BackendKind::Reference)
}

/// [`conv2d_backward`] through an explicit backend.
///
/// # Errors
///
/// Same contract as [`conv2d_backward`].
pub fn conv2d_backward_with(
    input: &Tensor,
    weights: &Tensor,
    delta_out: &Tensor,
    geo: &Conv2dGeometry,
    backend: BackendKind,
) -> Result<(Tensor, Tensor, Tensor)> {
    let n = check_batch_input(input, geo)?;
    let k2 = geo.in_channels * geo.kernel * geo.kernel;
    if delta_out.dims() != [n, geo.out_channels, geo.out_h, geo.out_w] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward delta",
            lhs: delta_out.dims().to_vec(),
            rhs: vec![n, geo.out_channels, geo.out_h, geo.out_w],
        });
    }
    if weights.dims() != [geo.out_channels, k2] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward weights",
            lhs: weights.dims().to_vec(),
            rhs: vec![geo.out_channels, k2],
        });
    }
    let kernels = backend.kernels();
    let mut dw = Tensor::zeros(&[geo.out_channels, k2]);
    let mut db = Tensor::zeros(&[geo.out_channels]);
    let mut dinput = Tensor::zeros(input.dims());
    let bands = conv_bands(n, geo.col_len());
    if bands == 1 {
        kernels.conv2d_backward(
            input.data(),
            weights.data(),
            delta_out.data(),
            dw.data_mut(),
            db.data_mut(),
            dinput.data_mut(),
            geo,
        );
    } else {
        // Per-band workers own disjoint dInput slices and private dW/db
        // partials; partials are reduced in band order afterwards, so the
        // result depends only on the band count, never on thread timing.
        let per = n.div_ceil(bands);
        let (wd, id, dd) = (weights.data(), input.data(), delta_out.data());
        let partials: Vec<(Vec<f32>, Vec<f32>)> = crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            let mut rest = dinput.data_mut();
            let mut row = 0usize;
            while row < n {
                let take = per.min(n - row);
                let (di_band, tail) = rest.split_at_mut(take * geo.in_len());
                let in_band = &id[row * geo.in_len()..(row + take) * geo.in_len()];
                let d_band = &dd[row * geo.out_len()..(row + take) * geo.out_len()];
                handles.push(s.spawn(move |_| {
                    let mut dw_part = vec![0.0f32; geo.weight_len()];
                    let mut db_part = vec![0.0f32; geo.out_channels];
                    kernels.conv2d_backward(
                        in_band,
                        wd,
                        d_band,
                        &mut dw_part,
                        &mut db_part,
                        di_band,
                        geo,
                    );
                    (dw_part, db_part)
                }));
                rest = tail;
                row += take;
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("conv2d backward worker panicked"))
                .collect()
        })
        .expect("conv2d backward scope panicked");
        let (dwd, dbd) = (dw.data_mut(), db.data_mut());
        for (dw_part, db_part) in &partials {
            for (x, y) in dwd.iter_mut().zip(dw_part) {
                *x += y;
            }
            for (x, y) in dbd.iter_mut().zip(db_part) {
                *x += y;
            }
        }
    }
    Ok((dw, db, dinput))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    /// Naive direct convolution used as an oracle.
    fn naive_forward(
        input: &Tensor,
        weights: &Tensor,
        bias: &Tensor,
        geo: &Conv2dGeometry,
    ) -> Tensor {
        let n = input.dims()[0];
        let mut out = Tensor::zeros(&[n, geo.out_channels, geo.out_h, geo.out_w]);
        for img in 0..n {
            for f in 0..geo.out_channels {
                for oh in 0..geo.out_h {
                    for ow in 0..geo.out_w {
                        let mut acc = bias.data()[f];
                        for c in 0..geo.in_channels {
                            for ki in 0..geo.kernel {
                                for kj in 0..geo.kernel {
                                    let ih = (oh * geo.stride + ki) as isize - geo.pad as isize;
                                    let iw = (ow * geo.stride + kj) as isize - geo.pad as isize;
                                    if ih < 0
                                        || iw < 0
                                        || ih as usize >= geo.in_h
                                        || iw as usize >= geo.in_w
                                    {
                                        continue;
                                    }
                                    let x = input.get(&[img, c, ih as usize, iw as usize]).unwrap();
                                    let w = weights
                                        .get(&[
                                            f,
                                            c * geo.kernel * geo.kernel + ki * geo.kernel + kj,
                                        ])
                                        .unwrap();
                                    acc += x * w;
                                }
                            }
                        }
                        out.set(&[img, f, oh, ow], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn geometry_matches_paper_table4() {
        // LeNet-5 L1: 32x32x3 -> 16x16x12 with 5x5/2 and darknet pad 2.
        let g = Conv2dGeometry::new(3, 32, 32, 12, 5, 2, 2).unwrap();
        assert_eq!((g.out_h, g.out_w), (16, 16));
        // LeNet-5 L2: 16x16x12 -> 8x8x12 with 5x5/2/2.
        let g = Conv2dGeometry::new(12, 16, 16, 12, 5, 2, 2).unwrap();
        assert_eq!((g.out_h, g.out_w), (8, 8));
        // LeNet-5 L3/L4: 8x8x12 -> 8x8x12 with 5x5/1/2.
        let g = Conv2dGeometry::new(12, 8, 8, 12, 5, 1, 2).unwrap();
        assert_eq!((g.out_h, g.out_w), (8, 8));
        // AlexNet L1 conv part: 32x32x3 -> 16x16x64 with 3x3/2/1.
        let g = Conv2dGeometry::new(3, 32, 32, 64, 3, 2, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (16, 16));
    }

    #[test]
    fn geometry_rejects_nonsense() {
        assert!(Conv2dGeometry::new(3, 8, 8, 4, 3, 0, 1).is_err());
        assert!(Conv2dGeometry::new(3, 2, 2, 4, 5, 1, 0).is_err());
        assert!(Conv2dGeometry::new(0, 8, 8, 4, 3, 1, 1).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // K=1, stride 1, no pad: the col matrix equals the image.
        let geo = Conv2dGeometry::new(2, 3, 3, 1, 1, 1, 0).unwrap();
        let img: Vec<f32> = (0..18).map(|x| x as f32).collect();
        let mut col = vec![0.0; geo.col_len()];
        im2col(&img, &geo, &mut col);
        assert_eq!(col, img);
    }

    #[test]
    fn forward_matches_naive_with_padding_and_stride() {
        for &(c, h, w, f, k, s, p) in &[
            (3usize, 8usize, 8usize, 4usize, 3usize, 1usize, 1usize),
            (2, 9, 7, 3, 3, 2, 1),
            (1, 6, 6, 2, 5, 1, 2),
            (3, 32, 32, 12, 5, 2, 2),
        ] {
            let geo = Conv2dGeometry::new(c, h, w, f, k, s, p).unwrap();
            let input = init::uniform(&[2, c, h, w], -1.0, 1.0, 40);
            let weights = init::uniform(&[f, c * k * k], -1.0, 1.0, 41);
            let bias = init::uniform(&[f], -1.0, 1.0, 42);
            let slow = naive_forward(&input, &weights, &bias, &geo);
            for backend in BackendKind::ALL {
                let fast = conv2d_forward_with(&input, &weights, &bias, &geo, backend).unwrap();
                assert!(
                    fast.approx_eq(&slow, 1e-3),
                    "{backend} mismatch for geometry {geo:?}"
                );
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for any x, y — the defining
        // property of an adjoint pair, which is what backprop relies on.
        let geo = Conv2dGeometry::new(2, 6, 5, 3, 3, 2, 1).unwrap();
        let x = init::uniform(&[geo.in_len()], -1.0, 1.0, 50);
        let y = init::uniform(&[geo.col_len()], -1.0, 1.0, 51);
        let mut colx = vec![0.0; geo.col_len()];
        im2col(x.data(), &geo, &mut colx);
        let lhs: f32 = colx.iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let mut imy = vec![0.0; geo.in_len()];
        col2im(y.data(), &geo, &mut imy);
        let rhs: f32 = x.data().iter().zip(&imy).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} != {rhs}");
    }

    #[test]
    fn backward_gradient_check() {
        // Finite-difference check of dW, db and dInput through a scalar
        // loss L = sum(Z), on both backends.
        let geo = Conv2dGeometry::new(2, 5, 5, 3, 3, 1, 1).unwrap();
        let input = init::uniform(&[1, 2, 5, 5], -1.0, 1.0, 60);
        let weights = init::uniform(&[3, 18], -1.0, 1.0, 61);
        let bias = init::uniform(&[3], -1.0, 1.0, 62);
        let delta = Tensor::ones(&[1, 3, geo.out_h, geo.out_w]);
        for backend in BackendKind::ALL {
            let (dw, db, dinput) =
                conv2d_backward_with(&input, &weights, &delta, &geo, backend).unwrap();
            let eps = 1e-3f32;
            let loss = |inp: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
                conv2d_forward_with(inp, w, b, &geo, backend)
                    .unwrap()
                    .data()
                    .iter()
                    .sum()
            };
            // dW check (a few random positions).
            for &i in &[0usize, 7, 23, 53] {
                let mut wp = weights.clone();
                wp.data_mut()[i] += eps;
                let mut wm = weights.clone();
                wm.data_mut()[i] -= eps;
                let num = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
                assert!(
                    (num - dw.data()[i]).abs() < 0.05,
                    "{backend} dW[{i}]: numeric {num} vs analytic {}",
                    dw.data()[i]
                );
            }
            // db check.
            for f in 0..3 {
                let mut bp = bias.clone();
                bp.data_mut()[f] += eps;
                let mut bm = bias.clone();
                bm.data_mut()[f] -= eps;
                let num = (loss(&input, &weights, &bp) - loss(&input, &weights, &bm)) / (2.0 * eps);
                assert!((num - db.data()[f]).abs() < 0.05);
            }
            // dInput check.
            for &i in &[0usize, 13, 31, 49] {
                let mut ip = input.clone();
                ip.data_mut()[i] += eps;
                let mut im = input.clone();
                im.data_mut()[i] -= eps;
                let num = (loss(&ip, &weights, &bias) - loss(&im, &weights, &bias)) / (2.0 * eps);
                assert!(
                    (num - dinput.data()[i]).abs() < 0.05,
                    "{backend} dInput[{i}]: numeric {num} vs analytic {}",
                    dinput.data()[i]
                );
            }
        }
    }

    #[test]
    fn banded_forward_is_bit_identical_to_full_batch() {
        // Simulate the parallel band split by hand (the machine's core
        // count must not decide whether this property is exercised).
        let geo = Conv2dGeometry::new(3, 16, 16, 6, 3, 1, 1).unwrap();
        let n = 8;
        let input = init::uniform(&[n, 3, 16, 16], -1.0, 1.0, 70);
        let weights = init::uniform(&[6, 27], -0.5, 0.5, 71);
        let bias = init::uniform(&[6], -0.5, 0.5, 72);
        for backend in BackendKind::ALL {
            let kernels = backend.kernels();
            let full = conv2d_forward_with(&input, &weights, &bias, &geo, backend).unwrap();
            for split in [1usize, 3, 5] {
                let mut banded = vec![0.0f32; n * geo.out_len()];
                let (lo, hi) = banded.split_at_mut(split * geo.out_len());
                kernels.conv2d_forward(
                    &input.data()[..split * geo.in_len()],
                    weights.data(),
                    bias.data(),
                    lo,
                    &geo,
                );
                kernels.conv2d_forward(
                    &input.data()[split * geo.in_len()..],
                    weights.data(),
                    bias.data(),
                    hi,
                    &geo,
                );
                assert_eq!(
                    full.data(),
                    &banded[..],
                    "{backend} split at {split} diverged"
                );
            }
        }
    }

    #[test]
    fn banded_backward_partials_reduce_to_full_batch() {
        let geo = Conv2dGeometry::new(2, 10, 10, 4, 3, 1, 1).unwrap();
        let n = 6;
        let input = init::uniform(&[n, 2, 10, 10], -1.0, 1.0, 80);
        let weights = init::uniform(&[4, 18], -0.5, 0.5, 81);
        let delta = init::uniform(&[n, 4, geo.out_h, geo.out_w], -1.0, 1.0, 82);
        for backend in BackendKind::ALL {
            let kernels = backend.kernels();
            let (dw, db, dinput) =
                conv2d_backward_with(&input, &weights, &delta, &geo, backend).unwrap();
            // Two hand-built bands: dInput slices are disjoint (bit-identical);
            // dW/db partials reduced in band order agree to f32 rounding.
            let split = 2usize;
            let mut dw_a = vec![0.0f32; geo.weight_len()];
            let mut db_a = vec![0.0f32; 4];
            let mut di = vec![0.0f32; n * geo.in_len()];
            let (di_lo, di_hi) = di.split_at_mut(split * geo.in_len());
            kernels.conv2d_backward(
                &input.data()[..split * geo.in_len()],
                weights.data(),
                &delta.data()[..split * geo.out_len()],
                &mut dw_a,
                &mut db_a,
                di_lo,
                &geo,
            );
            let mut dw_b = vec![0.0f32; geo.weight_len()];
            let mut db_b = vec![0.0f32; 4];
            kernels.conv2d_backward(
                &input.data()[split * geo.in_len()..],
                weights.data(),
                &delta.data()[split * geo.out_len()..],
                &mut dw_b,
                &mut db_b,
                di_hi,
                &geo,
            );
            assert_eq!(dinput.data(), &di[..], "{backend} dInput diverged");
            for i in 0..dw_a.len() {
                let reduced = dw_a[i] + dw_b[i];
                assert!(
                    (reduced - dw.data()[i]).abs() <= 1e-4 * (1.0 + dw.data()[i].abs()),
                    "{backend} dW[{i}] {reduced} vs {}",
                    dw.data()[i]
                );
            }
            for f in 0..4 {
                assert!((db_a[f] + db_b[f] - db.data()[f]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn forward_shape_errors() {
        let geo = Conv2dGeometry::new(3, 8, 8, 4, 3, 1, 1).unwrap();
        let input = Tensor::zeros(&[1, 3, 8, 8]);
        let bad_input = Tensor::zeros(&[1, 2, 8, 8]);
        let weights = Tensor::zeros(&[4, 27]);
        let bias = Tensor::zeros(&[4]);
        assert!(conv2d_forward(&bad_input, &weights, &bias, &geo).is_err());
        assert!(conv2d_forward(&input, &Tensor::zeros(&[4, 26]), &bias, &geo).is_err());
        assert!(conv2d_forward(&input, &weights, &Tensor::zeros(&[5]), &geo).is_err());
        assert!(conv2d_forward(&Tensor::zeros(&[3, 8, 8]), &weights, &bias, &geo).is_err());
    }
}
