//! Elementwise tensor algebra.
//!
//! These kernels cover the paper's Table 2 operations: the ordinary sums
//! and the Hadamard product `∗` that appears in the backpropagation
//! formulas `δ_l = (W_{l+1}·δ_{l+1}) ∗ f'_l(Z_l)`.
//!
//! The backend-routed variants ([`hadamard_with`], [`axpy_with`],
//! [`scale_with`]) exist so layers dispatch *every* kernel in their hot
//! path through one [`BackendKind`]; elementwise maps involve no
//! reductions, so all backends produce bit-identical results here.

use crate::backend::BackendKind;
use crate::{Result, Tensor, TensorError};

fn check_same(a: &Tensor, b: &Tensor, op: &'static str) -> Result<()> {
    if !a.shape().same_as(b.shape()) {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(())
}

/// Elementwise sum `a + b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "add")?;
    a.zip_with(b, |x, y| x + y)
}

/// Elementwise difference `a − b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "sub")?;
    a.zip_with(b, |x, y| x - y)
}

/// Hadamard (elementwise) product `a ∗ b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "hadamard")?;
    a.zip_with(b, |x, y| x * y)
}

/// [`hadamard`] through an explicit backend.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn hadamard_with(a: &Tensor, b: &Tensor, backend: BackendKind) -> Result<Tensor> {
    check_same(a, b, "hadamard")?;
    let mut out = Tensor::zeros(a.dims());
    backend
        .kernels()
        .hadamard(a.data(), b.data(), out.data_mut());
    Ok(out)
}

/// Scales every element by `s`, producing a new tensor.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// [`scale`] through an explicit backend.
pub fn scale_with(a: &Tensor, s: f32, backend: BackendKind) -> Tensor {
    let mut out = Tensor::zeros(a.dims());
    backend.kernels().scale(s, a.data(), out.data_mut());
    out
}

/// In-place `y ← y + alpha·x` (the BLAS `axpy` primitive; SGD's update rule
/// `W ← W − λ·dW` is `axpy(-λ, dW, W)`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) -> Result<()> {
    axpy_with(alpha, x, y, BackendKind::Reference)
}

/// [`axpy`] through an explicit backend.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn axpy_with(alpha: f32, x: &Tensor, y: &mut Tensor, backend: BackendKind) -> Result<()> {
    check_same(x, y, "axpy")?;
    backend.kernels().axpy(alpha, x.data(), y.data_mut());
    Ok(())
}

/// Linear interpolation `(1−t)·a + t·b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn lerp(a: &Tensor, b: &Tensor, t: f32) -> Result<Tensor> {
    check_same(a, b, "lerp")?;
    a.zip_with(b, |x, y| (1.0 - t) * x + t * y)
}

/// Clamps every element into `[lo, hi]`.
pub fn clamp(a: &Tensor, lo: f32, hi: f32) -> Tensor {
    a.map(|x| x.clamp(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[0.5, -1.0, 2.0]);
        let s = add(&a, &b).unwrap();
        assert_eq!(sub(&s, &b).unwrap().data(), a.data());
    }

    #[test]
    fn hadamard_known() {
        let a = t(&[2.0, 3.0]);
        let b = t(&[4.0, -1.0]);
        assert_eq!(hadamard(&a, &b).unwrap().data(), &[8.0, -3.0]);
    }

    #[test]
    fn scale_and_clamp() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(scale(&a, 3.0).data(), &[3.0, -6.0]);
        assert_eq!(clamp(&a, -1.0, 0.5).data(), &[0.5, -1.0]);
    }

    #[test]
    fn axpy_is_sgd_step() {
        let dw = t(&[10.0, 20.0]);
        let mut w = t(&[1.0, 2.0]);
        axpy(-0.1, &dw, &mut w).unwrap();
        assert_eq!(w.data(), &[0.0, 0.0]);
    }

    #[test]
    fn lerp_endpoints() {
        let a = t(&[0.0, 10.0]);
        let b = t(&[4.0, 20.0]);
        assert_eq!(lerp(&a, &b, 0.0).unwrap().data(), a.data());
        assert_eq!(lerp(&a, &b, 1.0).unwrap().data(), b.data());
        assert_eq!(lerp(&a, &b, 0.5).unwrap().data(), &[2.0, 15.0]);
    }

    #[test]
    fn backend_variants_are_bit_identical() {
        // No reductions to reassociate: every backend must agree exactly.
        let a = t(&[1.5, -2.25, 0.0, 4.0]);
        let b = t(&[-0.5, 3.0, 7.0, 0.125]);
        for backend in BackendKind::ALL {
            assert_eq!(
                hadamard_with(&a, &b, backend).unwrap().data(),
                hadamard(&a, &b).unwrap().data()
            );
            assert_eq!(scale_with(&a, -1.5, backend).data(), scale(&a, -1.5).data());
            let mut y = b.clone();
            axpy_with(0.75, &a, &mut y, backend).unwrap();
            let mut y_ref = b.clone();
            axpy(0.75, &a, &mut y_ref).unwrap();
            assert_eq!(y.data(), y_ref.data());
        }
    }

    #[test]
    fn mismatched_shapes_error() {
        let a = t(&[1.0]);
        let b = t(&[1.0, 2.0]);
        assert!(add(&a, &b).is_err());
        assert!(sub(&a, &b).is_err());
        assert!(hadamard(&a, &b).is_err());
        assert!(hadamard_with(&a, &b, BackendKind::Blocked).is_err());
        assert!(lerp(&a, &b, 0.5).is_err());
        let mut y = t(&[0.0, 0.0]);
        assert!(axpy(1.0, &a, &mut y).is_err());
    }
}
