//! Elementwise tensor algebra.
//!
//! These kernels cover the paper's Table 2 operations: the ordinary sums
//! and the Hadamard product `∗` that appears in the backpropagation
//! formulas `δ_l = (W_{l+1}·δ_{l+1}) ∗ f'_l(Z_l)`.

use crate::{Result, Tensor, TensorError};

fn check_same(a: &Tensor, b: &Tensor, op: &'static str) -> Result<()> {
    if !a.shape().same_as(b.shape()) {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(())
}

/// Elementwise sum `a + b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "add")?;
    a.zip_with(b, |x, y| x + y)
}

/// Elementwise difference `a − b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "sub")?;
    a.zip_with(b, |x, y| x - y)
}

/// Hadamard (elementwise) product `a ∗ b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "hadamard")?;
    a.zip_with(b, |x, y| x * y)
}

/// Scales every element by `s`, producing a new tensor.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// In-place `y ← y + alpha·x` (the BLAS `axpy` primitive; SGD's update rule
/// `W ← W − λ·dW` is `axpy(-λ, dW, W)`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) -> Result<()> {
    check_same(x, y, "axpy")?;
    for (yi, &xi) in y.data_mut().iter_mut().zip(x.data()) {
        *yi += alpha * xi;
    }
    Ok(())
}

/// Linear interpolation `(1−t)·a + t·b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn lerp(a: &Tensor, b: &Tensor, t: f32) -> Result<Tensor> {
    check_same(a, b, "lerp")?;
    a.zip_with(b, |x, y| (1.0 - t) * x + t * y)
}

/// Clamps every element into `[lo, hi]`.
pub fn clamp(a: &Tensor, lo: f32, hi: f32) -> Tensor {
    a.map(|x| x.clamp(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[0.5, -1.0, 2.0]);
        let s = add(&a, &b).unwrap();
        assert_eq!(sub(&s, &b).unwrap().data(), a.data());
    }

    #[test]
    fn hadamard_known() {
        let a = t(&[2.0, 3.0]);
        let b = t(&[4.0, -1.0]);
        assert_eq!(hadamard(&a, &b).unwrap().data(), &[8.0, -3.0]);
    }

    #[test]
    fn scale_and_clamp() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(scale(&a, 3.0).data(), &[3.0, -6.0]);
        assert_eq!(clamp(&a, -1.0, 0.5).data(), &[0.5, -1.0]);
    }

    #[test]
    fn axpy_is_sgd_step() {
        let dw = t(&[10.0, 20.0]);
        let mut w = t(&[1.0, 2.0]);
        axpy(-0.1, &dw, &mut w).unwrap();
        assert_eq!(w.data(), &[0.0, 0.0]);
    }

    #[test]
    fn lerp_endpoints() {
        let a = t(&[0.0, 10.0]);
        let b = t(&[4.0, 20.0]);
        assert_eq!(lerp(&a, &b, 0.0).unwrap().data(), a.data());
        assert_eq!(lerp(&a, &b, 1.0).unwrap().data(), b.data());
        assert_eq!(lerp(&a, &b, 0.5).unwrap().data(), &[2.0, 15.0]);
    }

    #[test]
    fn mismatched_shapes_error() {
        let a = t(&[1.0]);
        let b = t(&[1.0, 2.0]);
        assert!(add(&a, &b).is_err());
        assert!(sub(&a, &b).is_err());
        assert!(hadamard(&a, &b).is_err());
        assert!(lerp(&a, &b, 0.5).is_err());
        let mut y = t(&[0.0, 0.0]);
        assert!(axpy(1.0, &a, &mut y).is_err());
    }
}
