//! Matrix products.
//!
//! The forward/backward passes of dense layers and the im2col formulation of
//! convolutions reduce everything to three product forms:
//!
//! * `C = A·B` — [`matmul`],
//! * `C = A·Bᵀ` — [`matmul_nt`] (used for `dW = δ·Aᵀ` style products),
//! * `C = Aᵀ·B` — [`matmul_tn`] (used for `δ_in = Wᵀ·δ_out`).
//!
//! These functions are thin *dispatchers*: they validate shapes, allocate
//! the output and hand the innermost loops to a
//! [`TensorBackend`](crate::backend::TensorBackend) — the default
//! [`BackendKind::Reference`] kernels for the plain entry points, or any
//! backend via the `*_with` variants. [`matmul`] additionally splits row
//! bands across scoped threads (crossbeam) when the output is large
//! enough to amortize the spawn cost; each band is an independent kernel
//! call over disjoint output rows, so the result is bit-identical under
//! any banding whatever the backend. AlexNet's 4096×4096 dense layers are
//! intractable per-cycle without this.

use crate::backend::{BackendKind, FusedActivation, TensorBackend};
use crate::{Result, Tensor, TensorError};

/// Outputs smaller than this (in elements) are computed single-threaded.
const PARALLEL_THRESHOLD: usize = 64 * 64;

fn check2d(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.shape().ndim() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.shape().ndim(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Computes `C = A·B` for rank-2 tensors on the default
/// ([`BackendKind::Reference`]) backend.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices and
/// [`TensorError::ShapeMismatch`] when inner dimensions differ.
///
/// # Example
///
/// ```
/// use gradsec_tensor::{Tensor, ops::matmul::matmul};
///
/// # fn main() -> Result<(), gradsec_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_with(a, b, BackendKind::Reference)
}

/// [`matmul`] through an explicit backend.
///
/// # Errors
///
/// Same contract as [`matmul`].
pub fn matmul_with(a: &Tensor, b: &Tensor, backend: BackendKind) -> Result<Tensor> {
    let (m, ka) = check2d(a, "matmul")?;
    let (kb, n) = check2d(b, "matmul")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let kernels = backend.kernels();
    let mut out = Tensor::zeros(&[m, n]);
    if m * n >= PARALLEL_THRESHOLD && m >= 4 {
        matmul_parallel(kernels, a.data(), b.data(), out.data_mut(), m, ka, n);
    } else {
        kernels.matmul(a.data(), b.data(), out.data_mut(), m, ka, n);
    }
    Ok(out)
}

/// Computes `C = A·Bᵀ` on the default backend.
///
/// # Errors
///
/// Same contract as [`matmul`]; the shared dimension is `A`'s columns and
/// `B`'s columns.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_nt_with(a, b, BackendKind::Reference)
}

/// [`matmul_nt`] through an explicit backend.
///
/// # Errors
///
/// Same contract as [`matmul_nt`].
pub fn matmul_nt_with(a: &Tensor, b: &Tensor, backend: BackendKind) -> Result<Tensor> {
    let (m, ka) = check2d(a, "matmul_nt")?;
    let (n, kb) = check2d(b, "matmul_nt")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    backend
        .kernels()
        .matmul_nt(a.data(), b.data(), out.data_mut(), m, ka, n);
    Ok(out)
}

/// Fused dense-layer forward pass through an explicit backend: returns
/// `(Z, A)` where `Z = input·Wᵀ + b` (one bias row broadcast over the
/// batch) and `A = act(Z)`.
///
/// Backends without a fused kernel run the trait default — `matmul_nt`,
/// then a bias sweep, then the activation — which reproduces the
/// historical dense `forward` op order bit-for-bit; the `Tiled` backend
/// seeds the bias and applies the activation inside its GEMM writeback.
///
/// # Errors
///
/// Same contract as [`matmul_nt`], plus a shape error when `bias` is not
/// a length-`n` vector.
pub fn dense_forward_fused_with(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    act: FusedActivation,
    backend: BackendKind,
) -> Result<(Tensor, Tensor)> {
    let (m, ka) = check2d(input, "dense_forward")?;
    let (n, kb) = check2d(weights, "dense_forward")?;
    if ka != kb || bias.dims() != [n] {
        return Err(TensorError::ShapeMismatch {
            op: "dense_forward",
            lhs: input.dims().to_vec(),
            rhs: weights.dims().to_vec(),
        });
    }
    let mut z = Tensor::zeros(&[m, n]);
    let mut a = Tensor::zeros(&[m, n]);
    backend.kernels().dense_forward_fused(
        input.data(),
        weights.data(),
        bias.data(),
        z.data_mut(),
        a.data_mut(),
        act,
        m,
        ka,
        n,
    );
    Ok((z, a))
}

/// Computes `C = Aᵀ·B` on the default backend.
///
/// # Errors
///
/// Same contract as [`matmul`]; the shared dimension is the *rows* of both
/// operands.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_tn_with(a, b, BackendKind::Reference)
}

/// [`matmul_tn`] through an explicit backend.
///
/// # Errors
///
/// Same contract as [`matmul_tn`].
pub fn matmul_tn_with(a: &Tensor, b: &Tensor, backend: BackendKind) -> Result<Tensor> {
    let (ka, m) = check2d(a, "matmul_tn")?;
    let (kb, n) = check2d(b, "matmul_tn")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    backend
        .kernels()
        .matmul_tn(a.data(), b.data(), out.data_mut(), m, ka, n);
    Ok(out)
}

/// Computes the matrix–vector product `y = A·x` on the default backend.
///
/// # Errors
///
/// Returns shape errors when `A` is not `m×k` with `x` of length `k`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    matvec_with(a, x, BackendKind::Reference)
}

/// [`matvec`] through an explicit backend.
///
/// # Errors
///
/// Same contract as [`matvec`].
pub fn matvec_with(a: &Tensor, x: &Tensor, backend: BackendKind) -> Result<Tensor> {
    let (m, k) = check2d(a, "matvec")?;
    if x.shape().ndim() != 1 || x.dims()[0] != k {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m]);
    backend
        .kernels()
        .matvec(a.data(), x.data(), out.data_mut(), m, k);
    Ok(out)
}

/// Splits the rows of `C` into bands and computes each band on its own
/// scoped thread through the same backend kernel.
fn matmul_parallel(
    kernels: &dyn TensorBackend,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(m)
        .max(1);
    if threads == 1 {
        kernels.matmul(a, b, c, m, k, n);
        return;
    }
    let rows_per = m.div_ceil(threads);
    let bands: Vec<(usize, &mut [f32])> = {
        let mut bands = Vec::new();
        let mut rest = c;
        let mut row = 0;
        while row < m {
            let take = rows_per.min(m - row);
            let (band, tail) = rest.split_at_mut(take * n);
            bands.push((row, band));
            rest = tail;
            row += take;
        }
        bands
    };
    crossbeam::thread::scope(|s| {
        for (row0, band) in bands {
            let rows = band.len() / n;
            let asub = &a[row0 * k..(row0 + rows) * k];
            s.spawn(move |_| {
                kernels.matmul(asub, b, band, rows, k, n);
            });
        }
    })
    .expect("matmul worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                c.data_mut()[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = init::uniform(&[5, 5], -1.0, 1.0, 3);
        let c = matmul(&a, &Tensor::eye(5)).unwrap();
        assert!(c.approx_eq(&a, 1e-6));
    }

    #[test]
    fn blocked_matches_naive_rectangular() {
        let a = init::uniform(&[37, 21], -1.0, 1.0, 1);
        let b = init::uniform(&[21, 53], -1.0, 1.0, 2);
        let c = matmul(&a, &b).unwrap();
        assert!(c.approx_eq(&naive(&a, &b), 1e-3));
    }

    #[test]
    fn parallel_path_matches_naive() {
        // 128x128 crosses PARALLEL_THRESHOLD.
        let a = init::uniform(&[128, 96], -1.0, 1.0, 10);
        let b = init::uniform(&[96, 128], -1.0, 1.0, 11);
        for backend in BackendKind::ALL {
            let c = matmul_with(&a, &b, backend).unwrap();
            assert!(c.approx_eq(&naive(&a, &b), 1e-2), "{backend} diverged");
        }
    }

    #[test]
    fn nt_variant_equals_explicit_transpose() {
        let a = init::uniform(&[9, 14], -1.0, 1.0, 20);
        let b = init::uniform(&[7, 14], -1.0, 1.0, 21);
        for backend in BackendKind::ALL {
            let direct = matmul_nt_with(&a, &b, backend).unwrap();
            let explicit = matmul_with(&a, &b.transpose2d().unwrap(), backend).unwrap();
            assert!(direct.approx_eq(&explicit, 1e-4), "{backend} diverged");
        }
    }

    #[test]
    fn tn_variant_equals_explicit_transpose() {
        let a = init::uniform(&[14, 9], -1.0, 1.0, 22);
        let b = init::uniform(&[14, 7], -1.0, 1.0, 23);
        for backend in BackendKind::ALL {
            let direct = matmul_tn_with(&a, &b, backend).unwrap();
            let explicit = matmul_with(&a.transpose2d().unwrap(), &b, backend).unwrap();
            assert!(direct.approx_eq(&explicit, 1e-4), "{backend} diverged");
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = init::uniform(&[6, 4], -1.0, 1.0, 30);
        let x = init::uniform(&[4], -1.0, 1.0, 31);
        for backend in BackendKind::ALL {
            let y = matvec_with(&a, &x, backend).unwrap();
            let xm = x.reshape(&[4, 1]).unwrap();
            let ym = matmul_with(&a, &xm, backend).unwrap();
            assert!(
                y.approx_eq(&ym.reshape(&[6]).unwrap(), 1e-5),
                "{backend} diverged"
            );
        }
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        for backend in BackendKind::ALL {
            assert!(matmul_with(&a, &b, backend).is_err());
            assert!(matmul_with(&a, &Tensor::zeros(&[3]), backend).is_err());
            assert!(matmul_nt_with(&a, &Tensor::zeros(&[2, 4]), backend).is_err());
            assert!(matmul_tn_with(&a, &Tensor::zeros(&[3, 4]), backend).is_err());
            assert!(matvec_with(&a, &Tensor::zeros(&[2]), backend).is_err());
        }
    }
}
