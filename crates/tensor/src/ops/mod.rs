//! Tensor operation kernels.
//!
//! Kernels are grouped by family:
//!
//! * [`matmul`] — blocked and multi-threaded matrix products,
//! * [`conv`] — im2col/col2im 2-D convolution (forward + both backwards),
//! * [`pool`] — 2×2 max pooling with argmax bookkeeping,
//! * [`elementwise`] — Hadamard products, axpy, scaling,
//! * [`reduce`] — sums, means, argmax, row softmax.

pub mod conv;
pub mod elementwise;
pub mod matmul;
pub mod pool;
pub mod reduce;
