//! Tensor operation dispatchers.
//!
//! Ops are grouped by family:
//!
//! * [`matmul`] — blocked and multi-threaded matrix products,
//! * [`conv`] — im2col/col2im 2-D convolution (forward + both backwards),
//! * [`pool`] — 2×2 max pooling with argmax bookkeeping,
//! * [`elementwise`] — Hadamard products, axpy, scaling,
//! * [`reduce`] — sums, means, argmax, row softmax.
//!
//! Each module validates shapes, allocates outputs and handles thread
//! banding, then dispatches the innermost loops to a
//! [`TensorBackend`](crate::backend::TensorBackend): the plain functions
//! use the bit-identical-to-seed
//! [`BackendKind::Reference`](crate::backend::BackendKind) kernels, the
//! `*_with` variants take any [`crate::backend::BackendKind`].

pub mod conv;
pub mod elementwise;
pub mod matmul;
pub mod pool;
pub mod reduce;
