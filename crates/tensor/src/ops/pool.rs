//! Max pooling.
//!
//! The paper's AlexNet variant (Table 4) uses `MP2` — 2×2 max pooling with
//! stride 2 — fused after some convolutional layers. This module implements
//! general square max pooling with argmax bookkeeping so the backward pass
//! can route errors to the winning inputs only. As elsewhere in `ops`, the
//! functions here validate and allocate while the scan itself comes from a
//! [`TensorBackend`](crate::backend::TensorBackend) (`*_with` variants;
//! the plain entry points use [`BackendKind::Reference`]).

use crate::backend::BackendKind;
use crate::{Result, Tensor, TensorError};

/// Validated pooling geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolGeometry {
    /// Channel count (unchanged by pooling).
    pub channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square window edge.
    pub window: usize,
    /// Stride.
    pub stride: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl PoolGeometry {
    /// Computes and validates a pooling geometry (floor rule, no padding).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] for zero strides/windows or
    /// windows larger than the input.
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self> {
        if stride == 0 || window == 0 {
            return Err(TensorError::BadGeometry {
                reason: "pool stride and window must be non-zero".to_owned(),
            });
        }
        if window > in_h || window > in_w {
            return Err(TensorError::BadGeometry {
                reason: format!("pool window {window} larger than input {in_h}x{in_w}"),
            });
        }
        Ok(PoolGeometry {
            channels,
            in_h,
            in_w,
            window,
            stride,
            out_h: (in_h - window) / stride + 1,
            out_w: (in_w - window) / stride + 1,
        })
    }

    /// The standard `MP2` geometry of the paper: 2×2 window, stride 2.
    ///
    /// # Errors
    ///
    /// Propagates [`TensorError::BadGeometry`] for inputs smaller than 2×2.
    pub fn mp2(channels: usize, in_h: usize, in_w: usize) -> Result<Self> {
        PoolGeometry::new(channels, in_h, in_w, 2, 2)
    }
}

/// Forward max pooling over a `(N, C, H, W)` batch.
///
/// Returns the pooled output and a same-shaped index tensor whose entries
/// are the flat offsets (within each image) of the winning inputs, consumed
/// by [`maxpool_backward`].
///
/// # Errors
///
/// Returns shape errors when `input` disagrees with `geo`.
pub fn maxpool_forward(input: &Tensor, geo: &PoolGeometry) -> Result<(Tensor, Vec<u32>)> {
    maxpool_forward_with(input, geo, BackendKind::Reference)
}

/// [`maxpool_forward`] through an explicit backend.
///
/// # Errors
///
/// Same contract as [`maxpool_forward`].
pub fn maxpool_forward_with(
    input: &Tensor,
    geo: &PoolGeometry,
    backend: BackendKind,
) -> Result<(Tensor, Vec<u32>)> {
    let d = input.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "maxpool",
            expected: 4,
            actual: d.len(),
        });
    }
    if d[1] != geo.channels || d[2] != geo.in_h || d[3] != geo.in_w {
        return Err(TensorError::ShapeMismatch {
            op: "maxpool",
            lhs: d.to_vec(),
            rhs: vec![0, geo.channels, geo.in_h, geo.in_w],
        });
    }
    let n = d[0];
    let out_img = geo.channels * geo.out_h * geo.out_w;
    let mut out = Tensor::zeros(&[n, geo.channels, geo.out_h, geo.out_w]);
    let mut argmax = vec![0u32; n * out_img];
    backend
        .kernels()
        .maxpool_forward(input.data(), out.data_mut(), &mut argmax, n, geo);
    Ok((out, argmax))
}

/// Backward max pooling: routes each upstream error to the input position
/// that won the forward max.
///
/// # Errors
///
/// Returns shape errors when `delta_out` disagrees with `geo` or the argmax
/// buffer has the wrong length.
pub fn maxpool_backward(delta_out: &Tensor, argmax: &[u32], geo: &PoolGeometry) -> Result<Tensor> {
    maxpool_backward_with(delta_out, argmax, geo, BackendKind::Reference)
}

/// [`maxpool_backward`] through an explicit backend.
///
/// # Errors
///
/// Same contract as [`maxpool_backward`].
pub fn maxpool_backward_with(
    delta_out: &Tensor,
    argmax: &[u32],
    geo: &PoolGeometry,
    backend: BackendKind,
) -> Result<Tensor> {
    let d = delta_out.dims();
    if d.len() != 4 || d[1] != geo.channels || d[2] != geo.out_h || d[3] != geo.out_w {
        return Err(TensorError::ShapeMismatch {
            op: "maxpool_backward",
            lhs: d.to_vec(),
            rhs: vec![0, geo.channels, geo.out_h, geo.out_w],
        });
    }
    let n = d[0];
    let out_img = geo.channels * geo.out_h * geo.out_w;
    if argmax.len() != n * out_img {
        return Err(TensorError::LengthMismatch {
            expected: n * out_img,
            actual: argmax.len(),
        });
    }
    let mut dinput = Tensor::zeros(&[n, geo.channels, geo.in_h, geo.in_w]);
    backend
        .kernels()
        .maxpool_backward(delta_out.data(), argmax, dinput.data_mut(), n, geo);
    Ok(dinput)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn mp2_halves_spatial_dims() {
        let g = PoolGeometry::mp2(64, 16, 16).unwrap();
        assert_eq!((g.out_h, g.out_w), (8, 8));
    }

    #[test]
    fn geometry_rejects_nonsense() {
        assert!(PoolGeometry::new(1, 4, 4, 0, 2).is_err());
        assert!(PoolGeometry::new(1, 4, 4, 2, 0).is_err());
        assert!(PoolGeometry::new(1, 1, 1, 2, 2).is_err());
    }

    #[test]
    fn forward_picks_maxima() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let geo = PoolGeometry::mp2(1, 4, 4).unwrap();
        let (out, argmax) = maxpool_forward(&input, &geo).unwrap();
        assert_eq!(out.data(), &[4.0, 8.0, -1.0, 0.75]);
        assert_eq!(argmax, vec![5, 7, 8, 15]);
    }

    #[test]
    fn backward_routes_to_winners_only() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 9.0], &[1, 1, 2, 2]).unwrap();
        let geo = PoolGeometry::mp2(1, 2, 2).unwrap();
        let (_, argmax) = maxpool_forward(&input, &geo).unwrap();
        let delta = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let dinput = maxpool_backward(&delta, &argmax, &geo).unwrap();
        assert_eq!(dinput.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn pool_gradient_check() {
        let geo = PoolGeometry::mp2(2, 4, 4).unwrap();
        let input = init::uniform(&[1, 2, 4, 4], -1.0, 1.0, 70);
        let (_, argmax) = maxpool_forward(&input, &geo).unwrap();
        let delta = Tensor::ones(&[1, 2, 2, 2]);
        let dinput = maxpool_backward(&delta, &argmax, &geo).unwrap();
        let loss =
            |inp: &Tensor| -> f32 { maxpool_forward(inp, &geo).unwrap().0.data().iter().sum() };
        let eps = 1e-3;
        for i in 0..input.numel() {
            let mut ip = input.clone();
            ip.data_mut()[i] += eps;
            let mut im = input.clone();
            im.data_mut()[i] -= eps;
            let num = (loss(&ip) - loss(&im)) / (2.0 * eps);
            // At non-max positions both are 0; at maxima both are 1 (unless
            // the epsilon flips the argmax, which the tolerance absorbs).
            assert!(
                (num - dinput.data()[i]).abs() < 0.51,
                "dInput[{i}]: numeric {num} vs analytic {}",
                dinput.data()[i]
            );
        }
    }

    #[test]
    fn backends_agree_bit_identically() {
        // Pooling is memory-bound: the blocked backend deliberately reuses
        // the reference scan, so outputs match exactly.
        let geo = PoolGeometry::mp2(2, 4, 4).unwrap();
        let input = init::uniform(&[2, 2, 4, 4], -1.0, 1.0, 71);
        let (a, am_a) = maxpool_forward_with(&input, &geo, BackendKind::Reference).unwrap();
        let (b, am_b) = maxpool_forward_with(&input, &geo, BackendKind::Blocked).unwrap();
        assert_eq!(a.data(), b.data());
        assert_eq!(am_a, am_b);
        let delta = init::uniform(&[2, 2, 2, 2], -1.0, 1.0, 72);
        let da = maxpool_backward_with(&delta, &am_a, &geo, BackendKind::Reference).unwrap();
        let db = maxpool_backward_with(&delta, &am_b, &geo, BackendKind::Blocked).unwrap();
        assert_eq!(da.data(), db.data());
    }

    #[test]
    fn shape_errors() {
        let geo = PoolGeometry::mp2(1, 4, 4).unwrap();
        assert!(maxpool_forward(&Tensor::zeros(&[1, 2, 4, 4]), &geo).is_err());
        assert!(maxpool_forward(&Tensor::zeros(&[2, 4, 4]), &geo).is_err());
        let delta = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(maxpool_backward(&delta, &[0; 3], &geo).is_err());
        assert!(maxpool_backward(&Tensor::zeros(&[1, 1, 3, 3]), &[0; 4], &geo).is_err());
    }
}
