//! Reductions and row-wise normalisations.

use crate::backend::BackendKind;
use crate::{Result, Tensor, TensorError};

/// Sum of all elements.
pub fn sum(t: &Tensor) -> f32 {
    t.data().iter().sum()
}

/// [`sum`] through an explicit backend. Reductions are where backends
/// legitimately differ: the blocked backend accumulates in multiple
/// lanes, so its result can differ from [`sum`] by f32 reassociation
/// error (each backend is individually deterministic).
pub fn sum_with(t: &Tensor, backend: BackendKind) -> f32 {
    backend.kernels().sum(t.data())
}

/// Inner product `Σ a∗b` through an explicit backend.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn dot_with(a: &Tensor, b: &Tensor, backend: BackendKind) -> Result<f32> {
    if !a.shape().same_as(b.shape()) {
        return Err(TensorError::ShapeMismatch {
            op: "dot",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(backend.kernels().dot(a.data(), b.data()))
}

/// Arithmetic mean of all elements (0 for empty tensors).
pub fn mean(t: &Tensor) -> f32 {
    if t.numel() == 0 {
        0.0
    } else {
        sum(t) / t.numel() as f32
    }
}

/// Maximum element (−∞ for empty tensors).
pub fn max(t: &Tensor) -> f32 {
    t.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// Index of the maximum element (`None` for empty tensors; ties resolve to
/// the first occurrence).
pub fn argmax(t: &Tensor) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in t.data().iter().enumerate() {
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Row-wise argmax of a rank-2 tensor — the predicted class per sample.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices.
pub fn argmax_rows(t: &Tensor) -> Result<Vec<usize>> {
    if t.shape().ndim() != 2 {
        return Err(TensorError::RankMismatch {
            op: "argmax_rows",
            expected: 2,
            actual: t.shape().ndim(),
        });
    }
    let (r, c) = (t.dims()[0], t.dims()[1]);
    let mut out = Vec::with_capacity(r);
    for i in 0..r {
        let row = &t.data()[i * c..(i + 1) * c];
        let mut best = 0usize;
        for j in 1..c {
            if row[j] > row[best] {
                best = j;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// Numerically-stable softmax applied independently to each row of a
/// rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices.
pub fn softmax_rows(t: &Tensor) -> Result<Tensor> {
    if t.shape().ndim() != 2 {
        return Err(TensorError::RankMismatch {
            op: "softmax_rows",
            expected: 2,
            actual: t.shape().ndim(),
        });
    }
    let (r, c) = (t.dims()[0], t.dims()[1]);
    let mut out = t.clone();
    for i in 0..r {
        let row = &mut out.data_mut()[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - m).exp();
            z += *x;
        }
        if z > 0.0 {
            for x in row.iter_mut() {
                *x /= z;
            }
        }
    }
    Ok(out)
}

/// Mean of each column of a rank-2 tensor; used by the DPIA attacker's
/// mean-imputation strategy (paper §8.2).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices.
pub fn column_means(t: &Tensor) -> Result<Vec<f32>> {
    if t.shape().ndim() != 2 {
        return Err(TensorError::RankMismatch {
            op: "column_means",
            expected: 2,
            actual: t.shape().ndim(),
        });
    }
    let (r, c) = (t.dims()[0], t.dims()[1]);
    let mut means = vec![0.0f32; c];
    if r == 0 {
        return Ok(means);
    }
    for i in 0..r {
        let row = &t.data()[i * c..(i + 1) * c];
        for (m, &x) in means.iter_mut().zip(row) {
            *m += x;
        }
    }
    for m in &mut means {
        *m /= r as f32;
    }
    Ok(means)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], &[4]).unwrap();
        assert_eq!(sum(&t), 2.0);
        assert_eq!(mean(&t), 0.5);
        assert_eq!(max(&t), 3.0);
        assert_eq!(argmax(&t), Some(2));
    }

    #[test]
    fn backend_reductions_agree_within_rounding() {
        let t = Tensor::from_vec((0..37).map(|i| (i as f32) * 0.5 - 9.0).collect(), &[37]).unwrap();
        let u =
            Tensor::from_vec((0..37).map(|i| 1.0 - (i as f32) * 0.25).collect(), &[37]).unwrap();
        for backend in BackendKind::ALL {
            assert!((sum_with(&t, backend) - sum(&t)).abs() < 1e-3);
            let serial: f32 = t.data().iter().zip(u.data()).map(|(a, b)| a * b).sum();
            assert!((dot_with(&t, &u, backend).unwrap() - serial).abs() < 1e-3);
        }
        assert!(dot_with(&t, &Tensor::zeros(&[2]), BackendKind::Reference).is_err());
    }

    #[test]
    fn empty_tensor_reductions() {
        let t = Tensor::zeros(&[0]);
        assert_eq!(sum(&t), 0.0);
        assert_eq!(mean(&t), 0.0);
        assert_eq!(argmax(&t), None);
    }

    #[test]
    fn argmax_ties_resolve_first() {
        let t = Tensor::from_vec(vec![5.0, 5.0, 1.0], &[3]).unwrap();
        assert_eq!(argmax(&t), Some(0));
    }

    #[test]
    fn row_argmax() {
        let t = Tensor::from_vec(vec![1.0, 9.0, 2.0, 8.0, 0.0, 3.0], &[2, 3]).unwrap();
        assert_eq!(argmax_rows(&t).unwrap(), vec![1, 0]);
        assert!(argmax_rows(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]).unwrap();
        let s = softmax_rows(&t).unwrap();
        for i in 0..2 {
            let rowsum: f32 = s.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((rowsum - 1.0).abs() < 1e-5);
        }
        // Larger logits get larger probabilities.
        assert!(s.data()[2] > s.data()[1]);
        assert!(s.data()[1] > s.data()[0]);
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let s = softmax_rows(&t).unwrap();
        assert!(s.data().iter().all(|x| x.is_finite()));
        assert!((s.data().iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn column_means_known() {
        let t = Tensor::from_vec(vec![1.0, 10.0, 3.0, 20.0], &[2, 2]).unwrap();
        assert_eq!(column_means(&t).unwrap(), vec![2.0, 15.0]);
        assert_eq!(
            column_means(&Tensor::zeros(&[0, 2])).unwrap(),
            vec![0.0, 0.0]
        );
    }
}
