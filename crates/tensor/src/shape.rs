use serde::{Deserialize, Serialize};
use std::fmt;

use crate::TensorError;

/// A row-major tensor shape.
///
/// Shapes are small vectors of dimension sizes. The empty shape denotes a
/// scalar with one element. Dimensions of size zero are allowed (the tensor
/// then holds zero elements), which keeps edge cases such as empty batches
/// well defined.
///
/// # Example
///
/// ```
/// use gradsec_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates the scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of dimensions (the rank).
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Returns row-major strides (in elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank differs
    /// from the shape rank or any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() || index.iter().zip(&self.dims).any(|(i, d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        Ok(index.iter().zip(self.strides()).map(|(i, s)| i * s).sum())
    }

    /// Returns `true` when both shapes have identical dimensions.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_strides() {
        let s = Shape::new(&[3, 4, 5]);
        assert_eq!(s.numel(), 60);
        assert_eq!(s.strides(), vec![20, 5, 1]);
        assert_eq!(s.ndim(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.numel(), 1);
        assert_eq!(s.ndim(), 0);
        assert!(s.strides().is_empty());
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn zero_dim_means_empty() {
        let s = Shape::new(&[4, 0, 2]);
        assert_eq!(s.numel(), 0);
    }

    #[test]
    fn offset_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[0, 2]).unwrap(), 2);
        assert_eq!(s.offset(&[1, 0]).unwrap(), 3);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 5);
    }

    #[test]
    fn offset_rejects_bad_index() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2x3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    #[test]
    fn conversions() {
        let a: Shape = [1, 2].into();
        let b: Shape = vec![1, 2].into();
        let c: Shape = (&[1usize, 2][..]).into();
        assert!(a.same_as(&b));
        assert!(b.same_as(&c));
    }
}
