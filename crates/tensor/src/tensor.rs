use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Shape, TensorError};

/// An owned, dense, row-major `f32` tensor.
///
/// This is the single numeric container used throughout the GradSec
/// reproduction: network weights, activations, gradients, images and
/// attack feature matrices are all [`Tensor`]s.
///
/// # Example
///
/// ```
/// use gradsec_tensor::Tensor;
///
/// # fn main() -> Result<(), gradsec_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// let doubled = t.map(|x| x * 2.0);
/// assert_eq!(doubled.data(), &[2.0, 4.0, 6.0, 8.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` does not
    /// equal the element count implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Returns a read-only view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn get(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] when element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.numel() {
            return Err(TensorError::ReshapeMismatch {
                from: self.numel(),
                to: new_shape.numel(),
            });
        }
        Ok(Tensor {
            shape: new_shape,
            data: self.data.clone(),
        })
    }

    /// Reshapes in place (no data copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] when element counts differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.numel() {
            return Err(TensorError::ReshapeMismatch {
                from: self.numel(),
                to: new_shape.numel(),
            });
        }
        self.shape = new_shape;
        Ok(())
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two equally-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        f: F,
    ) -> Result<Tensor, TensorError> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                op: "zip_with",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn transpose2d(&self) -> Result<Tensor, TensorError> {
        if self.shape.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose2d",
                expected: 2,
                actual: self.shape.ndim(),
            });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Returns the squared Euclidean (Frobenius) norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Returns the Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Returns the Euclidean distance to `other`.
    ///
    /// The paper's *ImageLoss* metric for DRIA is exactly this distance
    /// between the reconstructed and the original image.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn distance(&self, other: &Tensor) -> Result<f32, TensorError> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                op: "distance",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let d: f32 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        Ok(d.sqrt())
    }

    /// Returns `true` when every element differs from `other` by at most
    /// `tol` (and shapes match).
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape.same_as(&other.shape)
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const PREVIEW: usize = 8;
        for (i, x) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …({} total)", self.data.len())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.5).data(), &[7.5, 7.5]);
        let i = Tensor::eye(3);
        assert_eq!(i.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(i.get(&[0, 1]).unwrap(), 0.0);
        assert_eq!(i.get(&[2, 2]).unwrap(), 1.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 2]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 4], &[2, 2]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert!(t.set(&[2, 0], 1.0).is_err());
    }

    #[test]
    fn reshape_checks_numel() {
        let t = Tensor::zeros(&[2, 6]);
        assert!(t.reshape(&[3, 4]).is_ok());
        assert!(t.reshape(&[5]).is_err());
        let mut u = t.clone();
        u.reshape_in_place(&[12]).unwrap();
        assert_eq!(u.dims(), &[12]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.map(|x| x + 1.0).data(), &[2.0, 3.0]);
        assert_eq!(a.zip_with(&b, |x, y| x * y).unwrap().data(), &[10.0, 40.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.zip_with(&c, |x, _| x).is_err());
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose2d().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert!(Tensor::zeros(&[2, 2, 2]).transpose2d().is_err());
    }

    #[test]
    fn norms_and_distance() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.norm(), 5.0);
        let b = Tensor::zeros(&[2]);
        assert_eq!(a.distance(&b).unwrap(), 5.0);
        assert!(a.distance(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0005, 2.0], &[2]).unwrap();
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&Tensor::zeros(&[3]), 1.0));
    }

    #[test]
    fn display_preview_truncates() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains("100 total"));
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::from_vec(vec![1.5, -2.5], &[2]).unwrap();
        // serde internal consistency via the Serialize/Deserialize derives is
        // exercised end-to-end in the fl crate's message tests; here we only
        // check the struct clones & compares.
        let u = t.clone();
        assert_eq!(t, u);
    }
}
