//! Backend parity properties.
//!
//! Three guarantees, each proptested over arbitrary shapes:
//!
//! 1. **Reference ≡ seed** — the `Reference` backend (and therefore every
//!    plain `ops::*` entry point) is *bit-identical* to the pre-backend
//!    seed kernels. The oracles below are verbatim copies of those seed
//!    loops — including the machine-independent conv banding/reduction
//!    schedule — so any reordering regression shows up as a bit diff.
//! 2. **Blocked ≈ Reference** — the `Blocked` backend agrees with
//!    `Reference` on every op (forward *and* backward) within 1e-5
//!    relative error (scaled by the largest output magnitude, since f32
//!    reassociation error is absolute per accumulation).
//! 3. **Each backend is deterministic** — running any op twice on the
//!    same inputs yields bit-identical results, including the
//!    thread-banded paths.
//! 4. **Tiled ≈ Reference on every ISA** — the `Tiled` backend agrees
//!    with `Reference` on every op (forward *and* backward) within the
//!    same 1e-5 relative bound, on the portable kernel *and* on the
//!    AVX2 kernel when the host has one; each ISA path is individually
//!    bit-deterministic, and the fused conv/dense forward hooks agree
//!    with their unfused op sequences (bit-identically on backends
//!    running the default unfused replay).

use gradsec_tensor::backend::{
    thread_scratch_checkouts, BackendKind, FusedActivation, TensorBackend, Tiled, TiledIsa,
};
use gradsec_tensor::ops::conv::{
    col2im, conv2d_backward_with, conv2d_forward_fused_with, conv2d_forward_with, im2col,
    Conv2dGeometry,
};
use gradsec_tensor::ops::elementwise::{axpy_with, hadamard_with, scale_with};
use gradsec_tensor::ops::matmul::{
    dense_forward_fused_with, matmul_nt_with, matmul_tn_with, matmul_with, matvec_with,
};
use gradsec_tensor::ops::pool::{maxpool_backward_with, maxpool_forward_with, PoolGeometry};
use gradsec_tensor::ops::reduce::{dot_with, sum_with};
use gradsec_tensor::{init, Tensor};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Seed-kernel oracles (verbatim copies of the pre-backend `ops` loops).
// ---------------------------------------------------------------------

/// The seed `matmul_block` kernel: cache-blocked i-k-j with BLOCK = 64.
/// The seed's threaded path splits disjoint row bands through this same
/// kernel, so its output is bit-identical to one full-matrix call.
fn seed_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    const BLOCK: usize = 64;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    let (a, b, c) = (a.data(), b.data(), out.data_mut());
    for ib in (0..m).step_by(BLOCK) {
        let imax = (ib + BLOCK).min(m);
        for kb in (0..k).step_by(BLOCK) {
            let kmax = (kb + BLOCK).min(k);
            for i in ib..imax {
                let crow = &mut c[i * n..(i + 1) * n];
                for kk in kb..kmax {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for j in 0..n {
                        crow[j] += aik * brow[j];
                    }
                }
            }
        }
    }
    out
}

fn seed_matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[0];
    let mut out = Tensor::zeros(&[m, n]);
    let (a, b, c) = (a.data(), b.data(), out.data_mut());
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += arow[kk] * brow[kk];
            }
            c[i * n + j] = acc;
        }
    }
    out
}

fn seed_matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    let (a, b, c) = (a.data(), b.data(), out.data_mut());
    for kk in 0..k {
        let arow = &a[kk * m..(kk + 1) * m];
        let brow = &b[kk * n..(kk + 1) * n];
        for i in 0..m {
            let aik = arow[i];
            if aik == 0.0 {
                continue;
            }
            let orow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                orow[j] += aik * brow[j];
            }
        }
    }
    out
}

fn seed_matvec(a: &Tensor, x: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let mut out = Tensor::zeros(&[m]);
    for i in 0..m {
        let row = &a.data()[i * k..(i + 1) * k];
        out.data_mut()[i] = row.iter().zip(x.data()).map(|(&a, &b)| a * b).sum();
    }
    out
}

/// The seed banding schedule: machine-independent, a pure function of
/// the batch size and per-image im2col volume.
fn seed_conv_bands(n: usize, col_len: usize) -> usize {
    const PARALLEL_THRESHOLD: usize = 64 * 64;
    const IMAGES_PER_BAND: usize = 4;
    if n < 2 || n * col_len < PARALLEL_THRESHOLD {
        return 1;
    }
    n.div_ceil(IMAGES_PER_BAND)
}

/// The seed `forward_band` kernel over one contiguous image band.
fn seed_forward_band(input: &[f32], wd: &[f32], bd: &[f32], out: &mut [f32], geo: &Conv2dGeometry) {
    let k2 = geo.in_channels * geo.kernel * geo.kernel;
    let cols = geo.out_h * geo.out_w;
    let n = input.len() / geo.in_len();
    let mut col = vec![0.0f32; geo.col_len()];
    for img in 0..n {
        let inp = &input[img * geo.in_len()..(img + 1) * geo.in_len()];
        im2col(inp, geo, &mut col);
        let out_img = &mut out[img * geo.out_len()..(img + 1) * geo.out_len()];
        for f in 0..geo.out_channels {
            let wrow = &wd[f * k2..(f + 1) * k2];
            let orow = &mut out_img[f * cols..(f + 1) * cols];
            orow.fill(bd[f]);
            for (kk, &w) in wrow.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let crow = &col[kk * cols..(kk + 1) * cols];
                for j in 0..cols {
                    orow[j] += w * crow[j];
                }
            }
        }
    }
}

/// The seed `backward_band` kernel.
fn seed_backward_band(
    input: &[f32],
    wd: &[f32],
    delta_out: &[f32],
    dwd: &mut [f32],
    dbd: &mut [f32],
    dinput: &mut [f32],
    geo: &Conv2dGeometry,
) {
    let k2 = geo.in_channels * geo.kernel * geo.kernel;
    let cols = geo.out_h * geo.out_w;
    let n = input.len() / geo.in_len();
    let mut col = vec![0.0f32; geo.col_len()];
    let mut dcol = vec![0.0f32; geo.col_len()];
    for img in 0..n {
        let inp = &input[img * geo.in_len()..(img + 1) * geo.in_len()];
        let dout = &delta_out[img * geo.out_len()..(img + 1) * geo.out_len()];
        im2col(inp, geo, &mut col);
        for f in 0..geo.out_channels {
            let drow = &dout[f * cols..(f + 1) * cols];
            let dwrow = &mut dwd[f * k2..(f + 1) * k2];
            for kk in 0..k2 {
                let crow = &col[kk * cols..(kk + 1) * cols];
                let mut acc = 0.0f32;
                for j in 0..cols {
                    acc += drow[j] * crow[j];
                }
                dwrow[kk] += acc;
            }
        }
        for f in 0..geo.out_channels {
            dbd[f] += dout[f * cols..(f + 1) * cols].iter().sum::<f32>();
        }
        dcol.fill(0.0);
        for f in 0..geo.out_channels {
            let wrow = &wd[f * k2..(f + 1) * k2];
            let drow = &dout[f * cols..(f + 1) * cols];
            for kk in 0..k2 {
                let w = wrow[kk];
                if w == 0.0 {
                    continue;
                }
                let dcrow = &mut dcol[kk * cols..(kk + 1) * cols];
                for j in 0..cols {
                    dcrow[j] += w * drow[j];
                }
            }
        }
        let dinp = &mut dinput[img * geo.in_len()..(img + 1) * geo.in_len()];
        col2im(&dcol, geo, dinp);
    }
}

/// Whole-batch seed forward: every image computes identically whatever
/// the banding, so one sequential pass is the bit-exact oracle.
fn seed_conv2d_forward(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    geo: &Conv2dGeometry,
) -> Tensor {
    let n = input.dims()[0];
    let mut out = Tensor::zeros(&[n, geo.out_channels, geo.out_h, geo.out_w]);
    seed_forward_band(
        input.data(),
        weights.data(),
        bias.data(),
        out.data_mut(),
        geo,
    );
    out
}

/// Whole-batch seed backward, replicating the band-ordered partial
/// reduction the seed's threaded path performs.
fn seed_conv2d_backward(
    input: &Tensor,
    weights: &Tensor,
    delta_out: &Tensor,
    geo: &Conv2dGeometry,
) -> (Tensor, Tensor, Tensor) {
    let n = input.dims()[0];
    let k2 = geo.in_channels * geo.kernel * geo.kernel;
    let mut dw = Tensor::zeros(&[geo.out_channels, k2]);
    let mut db = Tensor::zeros(&[geo.out_channels]);
    let mut dinput = Tensor::zeros(input.dims());
    let bands = seed_conv_bands(n, geo.col_len());
    if bands == 1 {
        seed_backward_band(
            input.data(),
            weights.data(),
            delta_out.data(),
            dw.data_mut(),
            db.data_mut(),
            dinput.data_mut(),
            geo,
        );
        return (dw, db, dinput);
    }
    let per = n.div_ceil(bands);
    let mut row = 0usize;
    while row < n {
        let take = per.min(n - row);
        let mut dw_part = vec![0.0f32; geo.weight_len()];
        let mut db_part = vec![0.0f32; geo.out_channels];
        seed_backward_band(
            &input.data()[row * geo.in_len()..(row + take) * geo.in_len()],
            weights.data(),
            &delta_out.data()[row * geo.out_len()..(row + take) * geo.out_len()],
            &mut dw_part,
            &mut db_part,
            &mut dinput.data_mut()[row * geo.in_len()..(row + take) * geo.in_len()],
            geo,
        );
        for (x, y) in dw.data_mut().iter_mut().zip(&dw_part) {
            *x += y;
        }
        for (x, y) in db.data_mut().iter_mut().zip(&db_part) {
            *x += y;
        }
        row += take;
    }
    (dw, db, dinput)
}

fn seed_maxpool_forward(input: &Tensor, geo: &PoolGeometry) -> (Tensor, Vec<u32>) {
    let n = input.dims()[0];
    let in_img = geo.channels * geo.in_h * geo.in_w;
    let out_img = geo.channels * geo.out_h * geo.out_w;
    let mut out = Tensor::zeros(&[n, geo.channels, geo.out_h, geo.out_w]);
    let mut argmax = vec![0u32; n * out_img];
    for img in 0..n {
        let inp = &input.data()[img * in_img..(img + 1) * in_img];
        let od = &mut out.data_mut()[img * out_img..(img + 1) * out_img];
        let am = &mut argmax[img * out_img..(img + 1) * out_img];
        for c in 0..geo.channels {
            for oh in 0..geo.out_h {
                for ow in 0..geo.out_w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for wi in 0..geo.window {
                        for wj in 0..geo.window {
                            let ih = oh * geo.stride + wi;
                            let iw = ow * geo.stride + wj;
                            let idx = c * geo.in_h * geo.in_w + ih * geo.in_w + iw;
                            if inp[idx] > best {
                                best = inp[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = c * geo.out_h * geo.out_w + oh * geo.out_w + ow;
                    od[o] = best;
                    am[o] = best_idx as u32;
                }
            }
        }
    }
    (out, argmax)
}

// ---------------------------------------------------------------------
// Tolerances.
// ---------------------------------------------------------------------

/// Asserts `got` agrees with `want` within 1e-5 relative error, scaled by
/// the largest output magnitude (reassociation error is absolute per
/// accumulation, so a near-cancelled element must be judged against the
/// magnitude of the terms that produced it, not its own).
fn assert_rel_close(want: &[f32], got: &[f32], what: &str) {
    assert_eq!(want.len(), got.len(), "{what}: length mismatch");
    let scale = want
        .iter()
        .chain(got.iter())
        .fold(1.0f32, |m, x| m.max(x.abs()));
    let tol = 1e-5 * scale;
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        assert!((w - g).abs() <= tol, "{what}[{i}]: {w} vs {g} (tol {tol})");
    }
}

fn t(dims: &[usize], seed: u64) -> Tensor {
    init::uniform(dims, -1.0, 1.0, seed)
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reference matmul family is bit-identical to the seed kernels for
    /// arbitrary shapes (including ones that cross the parallel-banding
    /// threshold), and Blocked agrees within relative tolerance. Both
    /// backends are deterministic.
    #[test]
    fn matmul_family_parity(m in 1usize..72, k in 1usize..48, n in 1usize..72, seed in 0u64..1000) {
        let a = t(&[m, k], seed);
        let b = t(&[k, n], seed + 1);
        let bt = t(&[n, k], seed + 2);
        let x = t(&[k], seed + 3);
        let at = t(&[k, m], seed + 4);

        let reference = matmul_with(&a, &b, BackendKind::Reference).unwrap();
        prop_assert_eq!(reference.data(), seed_matmul(&a, &b).data());
        let ref_nt = matmul_nt_with(&a, &bt, BackendKind::Reference).unwrap();
        prop_assert_eq!(ref_nt.data(), seed_matmul_nt(&a, &bt).data());
        let ref_tn = matmul_tn_with(&at, &b, BackendKind::Reference).unwrap();
        prop_assert_eq!(ref_tn.data(), seed_matmul_tn(&at, &b).data());
        let ref_mv = matvec_with(&a, &x, BackendKind::Reference).unwrap();
        prop_assert_eq!(ref_mv.data(), seed_matvec(&a, &x).data());

        let blocked = matmul_with(&a, &b, BackendKind::Blocked).unwrap();
        assert_rel_close(reference.data(), blocked.data(), "matmul");
        assert_rel_close(
            ref_nt.data(),
            matmul_nt_with(&a, &bt, BackendKind::Blocked).unwrap().data(),
            "matmul_nt",
        );
        assert_rel_close(
            ref_tn.data(),
            matmul_tn_with(&at, &b, BackendKind::Blocked).unwrap().data(),
            "matmul_tn",
        );
        assert_rel_close(
            ref_mv.data(),
            matvec_with(&a, &x, BackendKind::Blocked).unwrap().data(),
            "matvec",
        );

        assert_rel_close(
            reference.data(),
            matmul_with(&a, &b, BackendKind::Tiled).unwrap().data(),
            "tiled matmul",
        );
        assert_rel_close(
            ref_nt.data(),
            matmul_nt_with(&a, &bt, BackendKind::Tiled).unwrap().data(),
            "tiled matmul_nt",
        );
        assert_rel_close(
            ref_tn.data(),
            matmul_tn_with(&at, &b, BackendKind::Tiled).unwrap().data(),
            "tiled matmul_tn",
        );
        assert_rel_close(
            ref_mv.data(),
            matvec_with(&a, &x, BackendKind::Tiled).unwrap().data(),
            "tiled matvec",
        );

        for backend in BackendKind::ALL {
            let once = matmul_with(&a, &b, backend).unwrap();
            let twice = matmul_with(&a, &b, backend).unwrap();
            prop_assert_eq!(once.data(), twice.data(), "{} matmul nondeterministic", backend);
        }
    }

    /// Conv forward + both backward passes: Reference bit-identical to the
    /// seed kernels (including the band-ordered dW/db reduction), Blocked
    /// within relative tolerance, both deterministic.
    #[test]
    fn conv2d_parity(
        n in 1usize..6,
        c in 1usize..4,
        h in 3usize..12,
        w in 3usize..12,
        f in 1usize..7,
        kern in 1usize..5,
        stride in 1usize..3,
        pad in 0usize..3,
        seed in 0u64..1000,
    ) {
        // Clamp the kernel so it fits the padded input (geometry is
        // otherwise rejected, which is covered by the unit tests).
        let kern = kern.min(h + 2 * pad).min(w + 2 * pad);
        let geo = Conv2dGeometry::new(c, h, w, f, kern, stride, pad).unwrap();
        let input = t(&[n, c, h, w], seed);
        let weights = t(&[f, c * kern * kern], seed + 1);
        let bias = t(&[f], seed + 2);
        let delta = t(&[n, f, geo.out_h, geo.out_w], seed + 3);

        let fwd_ref = conv2d_forward_with(&input, &weights, &bias, &geo, BackendKind::Reference).unwrap();
        prop_assert_eq!(
            fwd_ref.data(),
            seed_conv2d_forward(&input, &weights, &bias, &geo).data()
        );
        let (dw_ref, db_ref, di_ref) =
            conv2d_backward_with(&input, &weights, &delta, &geo, BackendKind::Reference).unwrap();
        let (dw_seed, db_seed, di_seed) = seed_conv2d_backward(&input, &weights, &delta, &geo);
        prop_assert_eq!(dw_ref.data(), dw_seed.data());
        prop_assert_eq!(db_ref.data(), db_seed.data());
        prop_assert_eq!(di_ref.data(), di_seed.data());

        let fwd_blk = conv2d_forward_with(&input, &weights, &bias, &geo, BackendKind::Blocked).unwrap();
        assert_rel_close(fwd_ref.data(), fwd_blk.data(), "conv2d_forward");
        let (dw_blk, db_blk, di_blk) =
            conv2d_backward_with(&input, &weights, &delta, &geo, BackendKind::Blocked).unwrap();
        assert_rel_close(dw_ref.data(), dw_blk.data(), "conv2d dW");
        assert_rel_close(db_ref.data(), db_blk.data(), "conv2d db");
        assert_rel_close(di_ref.data(), di_blk.data(), "conv2d dInput");

        let fwd_tld = conv2d_forward_with(&input, &weights, &bias, &geo, BackendKind::Tiled).unwrap();
        assert_rel_close(fwd_ref.data(), fwd_tld.data(), "tiled conv2d_forward");
        let (dw_tld, db_tld, di_tld) =
            conv2d_backward_with(&input, &weights, &delta, &geo, BackendKind::Tiled).unwrap();
        assert_rel_close(dw_ref.data(), dw_tld.data(), "tiled conv2d dW");
        assert_rel_close(db_ref.data(), db_tld.data(), "tiled conv2d db");
        assert_rel_close(di_ref.data(), di_tld.data(), "tiled conv2d dInput");

        for backend in BackendKind::ALL {
            let f1 = conv2d_forward_with(&input, &weights, &bias, &geo, backend).unwrap();
            let f2 = conv2d_forward_with(&input, &weights, &bias, &geo, backend).unwrap();
            prop_assert_eq!(f1.data(), f2.data(), "{} conv fwd nondeterministic", backend);
            let (w1, b1, i1) = conv2d_backward_with(&input, &weights, &delta, &geo, backend).unwrap();
            let (w2, b2, i2) = conv2d_backward_with(&input, &weights, &delta, &geo, backend).unwrap();
            prop_assert_eq!(w1.data(), w2.data(), "{} conv dW nondeterministic", backend);
            prop_assert_eq!(b1.data(), b2.data(), "{} conv db nondeterministic", backend);
            prop_assert_eq!(i1.data(), i2.data(), "{} conv dI nondeterministic", backend);
        }
    }

    /// Pooling: bit-identical to the seed scan on every backend (the
    /// blocked backend deliberately shares the reference kernel).
    #[test]
    fn maxpool_parity(
        n in 1usize..5,
        c in 1usize..4,
        h in 2usize..10,
        w in 2usize..10,
        window in 1usize..4,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        // Clamp the window so it fits the input.
        let window = window.min(h).min(w);
        let geo = PoolGeometry::new(c, h, w, window, stride).unwrap();
        let input = t(&[n, c, h, w], seed);
        let (out_seed, am_seed) = seed_maxpool_forward(&input, &geo);
        let delta = t(&[n, c, geo.out_h, geo.out_w], seed + 1);
        for backend in BackendKind::ALL {
            let (out, am) = maxpool_forward_with(&input, &geo, backend).unwrap();
            prop_assert_eq!(out.data(), out_seed.data(), "{} pool fwd diverged", backend);
            prop_assert_eq!(&am, &am_seed, "{} pool argmax diverged", backend);
            let di = maxpool_backward_with(&delta, &am, &geo, backend).unwrap();
            let di_again = maxpool_backward_with(&delta, &am, &geo, backend).unwrap();
            prop_assert_eq!(di.data(), di_again.data(), "{} pool bwd nondeterministic", backend);
        }
        // Backward routes identically whatever the backend: same argmax,
        // same scatter.
        let di_ref = maxpool_backward_with(&delta, &am_seed, &geo, BackendKind::Reference).unwrap();
        let di_blk = maxpool_backward_with(&delta, &am_seed, &geo, BackendKind::Blocked).unwrap();
        prop_assert_eq!(di_ref.data(), di_blk.data());
    }

    /// Elementwise hooks are bit-identical across backends (no
    /// reductions); the reduce hooks agree within relative tolerance and
    /// are deterministic.
    #[test]
    fn elementwise_and_reduce_parity(len in 1usize..300, seed in 0u64..1000, alpha in -2.0f32..2.0) {
        let a = t(&[len], seed);
        let b = t(&[len], seed + 1);
        let had_ref = hadamard_with(&a, &b, BackendKind::Reference).unwrap();
        let had_blk = hadamard_with(&a, &b, BackendKind::Blocked).unwrap();
        prop_assert_eq!(had_ref.data(), had_blk.data());
        prop_assert_eq!(
            scale_with(&a, alpha, BackendKind::Reference).data(),
            scale_with(&a, alpha, BackendKind::Blocked).data()
        );
        let mut y_ref = b.clone();
        axpy_with(alpha, &a, &mut y_ref, BackendKind::Reference).unwrap();
        let mut y_blk = b.clone();
        axpy_with(alpha, &a, &mut y_blk, BackendKind::Blocked).unwrap();
        prop_assert_eq!(y_ref.data(), y_blk.data());

        // Scalar reductions can cancel to near zero, so judge the
        // reassociation error against the L1 mass of the terms summed.
        let sum_ref = sum_with(&a, BackendKind::Reference);
        let sum_blk = sum_with(&a, BackendKind::Blocked);
        let l1: f32 = a.data().iter().map(|x| x.abs()).sum();
        prop_assert!((sum_ref - sum_blk).abs() <= 1e-5 * (1.0 + l1));
        let dot_ref = dot_with(&a, &b, BackendKind::Reference).unwrap();
        let dot_blk = dot_with(&a, &b, BackendKind::Blocked).unwrap();
        let l1d: f32 = a.data().iter().zip(b.data()).map(|(x, y)| (x * y).abs()).sum();
        prop_assert!((dot_ref - dot_blk).abs() <= 1e-5 * (1.0 + l1d));
        for backend in BackendKind::ALL {
            prop_assert_eq!(sum_with(&a, backend), sum_with(&a, backend));
            prop_assert_eq!(dot_with(&a, &b, backend).unwrap(), dot_with(&a, &b, backend).unwrap());
        }
    }

    /// Every micro-kernel ISA the host can run (portable always; AVX2
    /// when detected) agrees with Reference within the relative bound on
    /// GEMM and conv (forward and backward), and each ISA path is
    /// individually bit-deterministic. Portable and AVX2 need not agree
    /// bitwise with *each other* (FMA contraction), only with the bound.
    #[test]
    fn tiled_isa_paths_agree(
        m in 1usize..40,
        k in 1usize..300,
        n in 1usize..40,
        imgs in 1usize..4,
        seed in 0u64..1000,
    ) {
        let a = t(&[m, k], seed);
        let b = t(&[k, n], seed + 1);
        let reference = matmul_with(&a, &b, BackendKind::Reference).unwrap();

        let geo = Conv2dGeometry::new(2, 7, 7, 5, 3, 1, 1).unwrap();
        let input = t(&[imgs, 2, 7, 7], seed + 2);
        let weights = t(&[5, 2 * 9], seed + 3);
        let bias = t(&[5], seed + 4);
        let delta = t(&[imgs, 5, geo.out_h, geo.out_w], seed + 5);
        let fwd_ref =
            conv2d_forward_with(&input, &weights, &bias, &geo, BackendKind::Reference).unwrap();
        let (dw_ref, db_ref, di_ref) =
            conv2d_backward_with(&input, &weights, &delta, &geo, BackendKind::Reference).unwrap();

        for isa in TiledIsa::available_on_host() {
            let tiled = Tiled::with_isa(isa);
            prop_assert_eq!(tiled.isa(), isa);

            let mut c1 = vec![0.0f32; m * n];
            tiled.matmul(a.data(), b.data(), &mut c1, m, k, n);
            assert_rel_close(reference.data(), &c1, &format!("{isa} matmul"));
            let mut c2 = vec![0.0f32; m * n];
            tiled.matmul(a.data(), b.data(), &mut c2, m, k, n);
            prop_assert_eq!(&c1, &c2, "{} matmul nondeterministic", isa);

            let mut f1 = vec![0.0f32; imgs * geo.out_len()];
            tiled.conv2d_forward(input.data(), weights.data(), bias.data(), &mut f1, &geo);
            assert_rel_close(fwd_ref.data(), &f1, &format!("{isa} conv fwd"));
            let mut f2 = vec![0.0f32; imgs * geo.out_len()];
            tiled.conv2d_forward(input.data(), weights.data(), bias.data(), &mut f2, &geo);
            prop_assert_eq!(&f1, &f2, "{} conv fwd nondeterministic", isa);

            let mut dw = vec![0.0f32; geo.weight_len()];
            let mut db = vec![0.0f32; geo.out_channels];
            let mut di = vec![0.0f32; imgs * geo.in_len()];
            tiled.conv2d_backward(
                input.data(), weights.data(), delta.data(), &mut dw, &mut db, &mut di, &geo,
            );
            assert_rel_close(dw_ref.data(), &dw, &format!("{isa} conv dW"));
            assert_rel_close(db_ref.data(), &db, &format!("{isa} conv db"));
            assert_rel_close(di_ref.data(), &di, &format!("{isa} conv dInput"));
            let mut dw2 = vec![0.0f32; geo.weight_len()];
            let mut db2 = vec![0.0f32; geo.out_channels];
            let mut di2 = vec![0.0f32; imgs * geo.in_len()];
            tiled.conv2d_backward(
                input.data(), weights.data(), delta.data(), &mut dw2, &mut db2, &mut di2, &geo,
            );
            prop_assert_eq!(&dw, &dw2, "{} conv dW nondeterministic", isa);
            prop_assert_eq!(&db, &db2, "{} conv db nondeterministic", isa);
            prop_assert_eq!(&di, &di2, "{} conv dI nondeterministic", isa);
        }
    }

    /// The fused conv/dense forward hooks agree with the unfused op
    /// sequence they replace: bit-identically on Reference/Blocked
    /// (whose default impls replay the exact historical op order) and
    /// within the relative bound on Tiled (which seeds bias and applies
    /// the activation inside its GEMM writeback).
    #[test]
    fn fused_forward_agrees_with_unfused(
        m in 1usize..20,
        k in 1usize..48,
        n in 1usize..20,
        imgs in 1usize..4,
        act_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let act = [
            FusedActivation::Identity,
            FusedActivation::Relu,
            FusedActivation::Sigmoid,
            FusedActivation::Tanh,
        ][act_idx];

        // Dense: Z = A·Wᵀ + b (bias broadcast row-wise), A = act(Z).
        let input = t(&[m, k], seed);
        let weights = t(&[n, k], seed + 1);
        let bias = t(&[n], seed + 2);
        let geo = Conv2dGeometry::new(2, 6, 6, 4, 3, 1, 1).unwrap();
        let cin = t(&[imgs, 2, 6, 6], seed + 3);
        let cw = t(&[4, 2 * 9], seed + 4);
        let cb = t(&[4], seed + 5);
        for backend in BackendKind::ALL {
            let mut z_want = matmul_nt_with(&input, &weights, backend).unwrap();
            for row in z_want.data_mut().chunks_mut(n) {
                for (zj, &bj) in row.iter_mut().zip(bias.data()) {
                    *zj += bj;
                }
            }
            let a_want: Vec<f32> = z_want.data().iter().map(|&z| act.apply(z)).collect();
            let (z_got, a_got) =
                dense_forward_fused_with(&input, &weights, &bias, act, backend).unwrap();
            if backend == BackendKind::Tiled {
                assert_rel_close(z_want.data(), z_got.data(), "tiled fused dense Z");
                assert_rel_close(&a_want, a_got.data(), "tiled fused dense A");
            } else {
                prop_assert_eq!(z_want.data(), z_got.data(), "{} fused dense Z drifted", backend);
                prop_assert_eq!(&a_want, a_got.data(), "{} fused dense A drifted", backend);
            }

            let z_cwant = conv2d_forward_with(&cin, &cw, &cb, &geo, backend).unwrap();
            let a_cwant: Vec<f32> = z_cwant.data().iter().map(|&z| act.apply(z)).collect();
            let (z_cgot, a_cgot) =
                conv2d_forward_fused_with(&cin, &cw, &cb, &geo, act, backend).unwrap();
            if backend == BackendKind::Tiled {
                assert_rel_close(z_cwant.data(), z_cgot.data(), "tiled fused conv Z");
                assert_rel_close(&a_cwant, a_cgot.data(), "tiled fused conv A");
            } else {
                prop_assert_eq!(z_cwant.data(), z_cgot.data(), "{} fused conv Z drifted", backend);
                prop_assert_eq!(&a_cwant, a_cgot.data(), "{} fused conv A drifted", backend);
            }
        }
    }
}

/// The `Tiled` conv path gathers patch taps straight into GEMM panels
/// (virtual im2col), so it must perform **zero** column-scratch
/// checkouts — while `Reference` on the same shapes materialises its
/// im2col/col2im buffers through the pool. Shapes are single-band
/// (`n = 1`), so the kernels run on the calling thread and the
/// thread-local counter observes exactly this op's traffic.
#[test]
fn tiled_conv_makes_no_scratch_checkouts() {
    let geo = Conv2dGeometry::new(3, 8, 8, 6, 3, 1, 1).unwrap();
    let input = t(&[1, 3, 8, 8], 1);
    let weights = t(&[6, 3 * 9], 2);
    let bias = t(&[6], 3);
    let delta = t(&[1, 6, geo.out_h, geo.out_w], 4);

    let before = thread_scratch_checkouts();
    let _ = conv2d_forward_with(&input, &weights, &bias, &geo, BackendKind::Tiled).unwrap();
    let _ = conv2d_forward_fused_with(
        &input,
        &weights,
        &bias,
        &geo,
        FusedActivation::Relu,
        BackendKind::Tiled,
    )
    .unwrap();
    let _ = conv2d_backward_with(&input, &weights, &delta, &geo, BackendKind::Tiled).unwrap();
    assert_eq!(
        thread_scratch_checkouts() - before,
        0,
        "tiled conv path touched the scratch pool"
    );

    // Sanity: the counter is live — Reference's im2col path does check
    // buffers out on the very same shapes.
    let before = thread_scratch_checkouts();
    let _ = conv2d_forward_with(&input, &weights, &bias, &geo, BackendKind::Reference).unwrap();
    let _ = conv2d_backward_with(&input, &weights, &delta, &geo, BackendKind::Reference).unwrap();
    assert!(
        thread_scratch_checkouts() - before >= 3,
        "reference conv path no longer exercises the scratch pool"
    );
}
