//! Property-based tests for the tensor substrate.

use gradsec_tensor::ops::conv::{col2im, conv2d_forward, im2col, Conv2dGeometry};
use gradsec_tensor::ops::elementwise::{add, hadamard, scale, sub};
use gradsec_tensor::ops::matmul::{matmul, matmul_nt, matmul_tn};
use gradsec_tensor::ops::pool::{maxpool_backward, maxpool_forward, PoolGeometry};
use gradsec_tensor::ops::reduce::{softmax_rows, sum};
use gradsec_tensor::{init, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, 1usize..8, 1usize..8)
}

fn tensor_with(dims: Vec<usize>, seed: u64) -> Tensor {
    init::uniform(&dims, -2.0, 2.0, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative((m, k, n) in small_dims(), p in 1usize..6, seed in 0u64..1000) {
        let a = tensor_with(vec![m, k], seed);
        let b = tensor_with(vec![k, n], seed + 1);
        let c = tensor_with(vec![n, p], seed + 2);
        let left = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
        let right = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-2));
    }

    #[test]
    fn matmul_distributes_over_add((m, k, n) in small_dims(), seed in 0u64..1000) {
        let a = tensor_with(vec![m, k], seed);
        let b = tensor_with(vec![k, n], seed + 1);
        let c = tensor_with(vec![k, n], seed + 2);
        let lhs = matmul(&a, &add(&b, &c).unwrap()).unwrap();
        let rhs = add(&matmul(&a, &b).unwrap(), &matmul(&a, &c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    #[test]
    fn transpose_variants_agree((m, k, n) in small_dims(), seed in 0u64..1000) {
        let a = tensor_with(vec![m, k], seed);
        let b = tensor_with(vec![k, n], seed + 1);
        let plain = matmul(&a, &b).unwrap();
        let via_nt = matmul_nt(&a, &b.transpose2d().unwrap()).unwrap();
        let via_tn = matmul_tn(&a.transpose2d().unwrap(), &b).unwrap();
        prop_assert!(plain.approx_eq(&via_nt, 1e-3));
        prop_assert!(plain.approx_eq(&via_tn, 1e-3));
    }

    #[test]
    fn hadamard_commutes(len in 1usize..64, seed in 0u64..1000) {
        let a = tensor_with(vec![len], seed);
        let b = tensor_with(vec![len], seed + 1);
        prop_assert!(hadamard(&a, &b).unwrap().approx_eq(&hadamard(&b, &a).unwrap(), 1e-6));
    }

    #[test]
    fn scale_is_linear_in_sum(len in 1usize..64, s in -3.0f32..3.0, seed in 0u64..1000) {
        let a = tensor_with(vec![len], seed);
        let scaled_sum = sum(&scale(&a, s));
        prop_assert!((scaled_sum - s * sum(&a)).abs() < 1e-2);
    }

    #[test]
    fn sub_then_add_roundtrips(len in 1usize..64, seed in 0u64..1000) {
        let a = tensor_with(vec![len], seed);
        let b = tensor_with(vec![len], seed + 1);
        let round = add(&sub(&a, &b).unwrap(), &b).unwrap();
        prop_assert!(round.approx_eq(&a, 1e-5));
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..4, h in 3usize..10, w in 3usize..10,
        k in 1usize..4, s in 1usize..3, p in 0usize..2, seed in 0u64..1000
    ) {
        prop_assume!(h + 2 * p >= k && w + 2 * p >= k);
        let geo = Conv2dGeometry::new(c, h, w, 2, k, s, p).unwrap();
        let x = tensor_with(vec![geo.in_len()], seed);
        let y = tensor_with(vec![geo.col_len()], seed + 1);
        let mut colx = vec![0.0; geo.col_len()];
        im2col(x.data(), &geo, &mut colx);
        let lhs: f32 = colx.iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let mut imy = vec![0.0; geo.in_len()];
        col2im(y.data(), &geo, &mut imy);
        let rhs: f32 = x.data().iter().zip(&imy).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn conv_is_linear_in_input(
        c in 1usize..3, hw in 4usize..8, f in 1usize..4, seed in 0u64..1000
    ) {
        let geo = Conv2dGeometry::new(c, hw, hw, f, 3, 1, 1).unwrap();
        let x1 = tensor_with(vec![1, c, hw, hw], seed);
        let x2 = tensor_with(vec![1, c, hw, hw], seed + 1);
        let w = tensor_with(vec![f, c * 9], seed + 2);
        let b = Tensor::zeros(&[f]);
        let y_sum = conv2d_forward(&add(&x1, &x2).unwrap(), &w, &b, &geo).unwrap();
        let sum_y = add(
            &conv2d_forward(&x1, &w, &b, &geo).unwrap(),
            &conv2d_forward(&x2, &w, &b, &geo).unwrap(),
        ).unwrap();
        prop_assert!(y_sum.approx_eq(&sum_y, 1e-2));
    }

    #[test]
    fn maxpool_roundtrip_preserves_error_mass(
        c in 1usize..4, hw in 2usize..8, seed in 0u64..1000
    ) {
        prop_assume!(hw >= 2);
        let geo = PoolGeometry::mp2(c, hw, hw).unwrap();
        let input = tensor_with(vec![1, c, hw, hw], seed);
        let (out, argmax) = maxpool_forward(&input, &geo).unwrap();
        let delta = tensor_with(vec![1, c, geo.out_h, geo.out_w], seed + 1);
        let dinput = maxpool_backward(&delta, &argmax, &geo).unwrap();
        // The backward pass scatters without loss: total error mass equal.
        prop_assert!((sum(&dinput) - sum(&delta)).abs() < 1e-3);
        // Pooling never invents values (for odd inputs the global max may
        // sit in an uncovered edge row, so only an upper bound holds).
        let in_max = input.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let out_max = out.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(out_max <= in_max + 1e-6);
        if hw % 2 == 0 {
            prop_assert!((out_max - in_max).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(r in 1usize..6, c in 1usize..10, seed in 0u64..1000) {
        let t = tensor_with(vec![r, c], seed);
        let s = softmax_rows(&t).unwrap();
        for i in 0..r {
            let row = &s.data()[i * c..(i + 1) * c];
            prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
            prop_assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn reshape_preserves_data(len in 1usize..64, seed in 0u64..1000) {
        let t = tensor_with(vec![len], seed);
        let r = t.reshape(&[1, len]).unwrap();
        prop_assert_eq!(t.data(), r.data());
    }

    #[test]
    fn distance_is_a_metric(len in 1usize..32, seed in 0u64..1000) {
        let a = tensor_with(vec![len], seed);
        let b = tensor_with(vec![len], seed + 1);
        let c = tensor_with(vec![len], seed + 2);
        let dab = a.distance(&b).unwrap();
        let dba = b.distance(&a).unwrap();
        prop_assert!((dab - dba).abs() < 1e-4); // symmetry
        prop_assert!(a.distance(&a).unwrap() < 1e-6); // identity
        let dac = a.distance(&c).unwrap();
        let dcb = c.distance(&b).unwrap();
        prop_assert!(dab <= dac + dcb + 1e-3); // triangle inequality
    }
}
