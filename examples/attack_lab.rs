//! Attack laboratory: run DRIA and MIA against protected and unprotected
//! models and watch the protection work.
//!
//! ```text
//! cargo run --release --example attack_lab
//! ```

use gradsec::attacks::dria::{run_dria, DriaConfig};
use gradsec::attacks::mia::{run_mia, MiaConfig};
use gradsec::data::{one_hot, Dataset, SyntheticCifar100};
use gradsec::nn::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- DRIA: reconstruct a training image from leaked gradients. ---
    let ds = SyntheticCifar100::new(32, 42);
    let sample = ds.sample(3);
    let target = sample.image.reshape(&[1, 3, 32, 32])?;
    let label = one_hot(&[sample.label], ds.num_classes());
    // DLG needs a twice-differentiable model (sigmoid LeNet-5).
    let mut model = zoo::lenet5_smooth(43)?;
    let cfg = DriaConfig {
        iterations: 400,
        seed: 9,
        ..DriaConfig::default()
    };
    println!("DRIA (gradient-matching reconstruction, 400 L-BFGS iterations):");
    let open = run_dria(&mut model, &target, &label, &[], &cfg)?;
    println!("  no protection : ImageLoss {:.3}", open.image_loss);
    let shut = run_dria(&mut model, &target, &label, &[1], &cfg)?;
    println!("  L2 in enclave : ImageLoss {:.3}", shut.image_loss);
    println!(
        "  -> protecting one early conv layer defeats the reconstruction ({}x worse)",
        (shut.image_loss / open.image_loss).round()
    );

    // --- MIA: infer training-set membership from gradients. ---
    println!("\nMIA (membership inference on an overfitted LeNet-5):");
    let mia_ds = SyntheticCifar100::new(180, 7);
    let mia_cfg = MiaConfig {
        members: 60,
        overfit_epochs: 40,
        batch_size: 16,
        learning_rate: 0.03,
        attack_train_frac: 0.5,
        raw_per_layer: 0,
        seed: 7,
    };
    let mut victim = zoo::lenet5(44)?;
    let open = run_mia(&mut victim, &mia_ds, &[], &mia_cfg)?;
    println!(
        "  no protection  : AUC {:.3} (victim train acc {:.2})",
        open.auc, open.victim_train_accuracy
    );
    let mut victim = zoo::lenet5(44)?;
    let shut = run_mia(&mut victim, &mia_ds, &[0, 1, 2, 3, 4], &mia_cfg)?;
    println!(
        "  all layers hidden: AUC {:.3} (random guess = 0.5)",
        shut.auc
    );
    Ok(())
}
