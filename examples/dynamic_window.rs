//! Dynamic GradSec: watch the moving window slide across FL cycles and
//! compare its cost against static full coverage.
//!
//! ```text
//! cargo run --release --example dynamic_window
//! ```

use gradsec::core::leakage::LeakageModel;
use gradsec::core::trainer::estimate_cycle;
use gradsec::core::window::MovingWindow;
use gradsec::core::ProtectionPolicy;
use gradsec::nn::zoo;
use gradsec::tee::cost::{CostModel, TimeBreakdown};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's best DPIA defence: size 2, V_MW = [0.2, 0.1, 0.6, 0.1].
    let v_mw = vec![0.2, 0.1, 0.6, 0.1];
    let window = MovingWindow::new(2, 5, v_mw.clone(), 42)?;
    let policy = ProtectionPolicy::dynamic(window.clone());
    let leakage = LeakageModel::new(policy, 5);

    println!("Moving window schedule (size 2, V_MW = {v_mw:?}):");
    for round in 0..12 {
        let prot = leakage.protected(round);
        let labels: Vec<String> = prot.iter().map(|l| format!("L{}", l + 1)).collect();
        println!("  cycle {round:2}: enclave holds {}", labels.join("+"));
    }
    let freq = window.empirical_frequencies(10_000);
    println!("\nEmpirical position frequencies over 10k cycles: {freq:.2?}");

    // Cost: V_MW-weighted average vs protecting everything at once.
    let model = zoo::lenet5(1)?;
    let cost = CostModel::raspberry_pi3();
    let mut weighted = Vec::new();
    for (pos, &weight) in v_mw.iter().enumerate().take(window.positions()) {
        let (t, _) = estimate_cycle(&model, &window.layers_at(pos), 10, 32, &cost)?;
        weighted.push((t, weight));
    }
    let avg = TimeBreakdown::weighted_average(&weighted);
    let (all, _) = estimate_cycle(&model, &[0, 1, 2, 3, 4], 10, 32, &cost)?;
    let (base, _) = estimate_cycle(&model, &[], 10, 32, &cost)?;
    println!(
        "\nPer-cycle time: dynamic {:.2}s vs whole-model-in-TEE {:.2}s (baseline {:.2}s)",
        avg.total_s(),
        all.total_s(),
        base.total_s()
    );
    println!(
        "The window touches every layer over time at {:.0}% of the all-in cost.",
        100.0 * avg.total_s() / all.total_s()
    );
    Ok(())
}
