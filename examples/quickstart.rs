//! Quickstart: shelter two non-contiguous LeNet-5 layers in the simulated
//! enclave and train one FL cycle.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gradsec::core::memory_model::layers_tee_mb;
use gradsec::core::policy::ProtectionPolicy;
use gradsec::core::trainer::SecureTrainer;
use gradsec::data::SyntheticCifar100;
use gradsec::nn::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's flagship configuration: protect L2 (against DRIA) and
    // L5 (against MIA) — a non-contiguous pair DarkneTZ cannot express.
    let policy = ProtectionPolicy::static_layers(&[1, 4])?;
    let mut model = zoo::lenet5(42)?;
    policy.validate(model.num_layers())?;
    let protected = policy.protected_for_round(0, model.num_layers());
    println!(
        "Protecting layers {:?} (paper notation: L2 and L5)",
        protected.iter().map(|l| l + 1).collect::<Vec<_>>()
    );
    println!(
        "Estimated TEE memory at batch 32: {:.3} MB",
        layers_tee_mb(&model, &protected, 32)
    );

    // One training cycle with the protected layers inside the enclave.
    let dataset = SyntheticCifar100::new(320, 7);
    let batches: Vec<Vec<usize>> = (0..10).map(|b| (b * 32..(b + 1) * 32).collect()).collect();
    let mut trainer = SecureTrainer::new();
    let report = trainer.run_cycle(&mut model, &dataset, &batches, 0.05, &protected)?;

    println!("\nOne FL cycle (batch 32, 10 batches, Pi-3B+ cost model):");
    println!("  time      : {}", report.time_row());
    println!("  TEE peak  : {:.3} MB", report.tee_peak_mb());
    println!("  crossings : {}", report.crossings);
    println!("  mean loss : {:.4}", report.mean_loss);

    // The unprotected baseline for comparison.
    let mut baseline_model = zoo::lenet5(42)?;
    let baseline = trainer.run_cycle(&mut baseline_model, &dataset, &batches, 0.05, &[])?;
    println!(
        "\nOverhead vs unprotected baseline: {:.0}% (paper reports 235% for L2+L5)",
        report.overhead_percent(&baseline)
    );
    Ok(())
}
