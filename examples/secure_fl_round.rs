//! A full secure federated-learning deployment: a mixed device fleet is
//! screened by remote attestation, TEE-capable clients train with the
//! GradSec secure trainer, and the server aggregates across rounds.
//!
//! ```text
//! cargo run --release --example secure_fl_round
//! ```

use std::sync::Arc;

use gradsec::core::trainer::SecureTrainer;
use gradsec::core::ProtectionPolicy;
use gradsec::data::SyntheticCifar100;
use gradsec::fl::client::DeviceProfile;
use gradsec::fl::config::TrainingPlan;
use gradsec::fl::runner::Federation;
use gradsec::fl::ExecutionEngine;
use gradsec::nn::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = Arc::new(SyntheticCifar100::with_classes(480, 8, 3));
    let plan = TrainingPlan {
        rounds: 5,
        clients_per_round: 3,
        batches_per_cycle: 4,
        batch_size: 16,
        learning_rate: 0.05,
        seed: 11,
    };
    // A realistic fleet: TrustZone phones, a legacy device without a TEE,
    // and a compromised device running modified TA code.
    let devices = vec![
        DeviceProfile::trustzone(0),
        DeviceProfile::trustzone(1),
        DeviceProfile::legacy(2),
        DeviceProfile::compromised(3),
        DeviceProfile::trustzone(4),
    ];
    // Server-side protection schedule: static {L2, L5}.
    let policy = ProtectionPolicy::static_layers(&[1, 4])?;
    let mut fed = Federation::builder(plan)
        .model(|| zoo::lenet5_with(8, 21).expect("LeNet-5 builds"))
        .devices(devices, data)
        .trainer(|_| Box::new(SecureTrainer::new()))
        .scheduler(policy)
        .engine(ExecutionEngine::new(4))
        .build()?;

    println!("Running {} federated rounds…", fed.server().plan().rounds);
    let report = fed.run()?;
    for r in &report.rounds {
        println!(
            "round {}: clients {:?} protected {:?} mean loss {:.4}",
            r.round,
            r.participants,
            r.protected_layers.iter().map(|l| l + 1).collect::<Vec<_>>(),
            r.mean_loss
        );
    }
    println!("\nNote: clients 2 (no TEE) and 3 (failed attestation) never participate —");
    println!("the selection gate of the paper's Figure 2-(1).");
    let last = report.rounds.last().expect("rounds ran");
    let entry = last
        .ledger
        .entries()
        .first()
        .expect("participants recorded in the ledger");
    println!(
        "\nClient {} last cycle: {:.3}s simulated ({:.3}s user + {:.3}s kernel + {:.3}s alloc), TEE peak {:.3} MB",
        entry.client_id,
        entry.time.total_s(),
        entry.time.user_s,
        entry.time.kernel_s,
        entry.time.alloc_s,
        entry.tee_peak_bytes as f64 / (1024.0 * 1024.0),
    );
    fed.shutdown()?;
    Ok(())
}
