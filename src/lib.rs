//! # GradSec
//!
//! Facade crate for the GradSec reproduction — *Shielding Federated
//! Learning Systems against Inference Attacks with ARM TrustZone*
//! (Ait Messaoud, Ben Mokhtar, Nitu, Schiavoni — Middleware 2022).
//!
//! This crate re-exports the workspace's building blocks under one roof:
//!
//! * [`tensor`] — dense `f32` math substrate,
//! * [`nn`] — CNN framework (LeNet-5 / AlexNet per the paper's Table 4),
//! * [`tee`] — simulated ARM TrustZone / OP-TEE (worlds, secure memory,
//!   secure storage, attestation, cost model),
//! * [`data`] — synthetic CIFAR-100-like and LFW-like datasets,
//! * [`fl`] — federated-learning server/clients with TEE-aware selection,
//! * [`attacks`] — DRIA, MIA and DPIA client-side inference attacks,
//! * [`core`] — GradSec itself: protection policies, leakage model,
//!   moving-window scheduler and the secure trainer.
//!
//! See `README.md` for a quickstart and the architecture notes on the
//! protection scheduler, the parallel round engine and the round ledger.

pub use gradsec_attacks as attacks;
pub use gradsec_core as core;
pub use gradsec_data as data;
pub use gradsec_fl as fl;
pub use gradsec_nn as nn;
pub use gradsec_tee as tee;
pub use gradsec_tensor as tensor;
