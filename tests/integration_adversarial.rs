//! Hostile-fleet integration: a federation with seeded adversarial
//! personas (update poisoners, scalers, free-riders, colluders) must be
//! bit-identical across every execution path — flat, sharded, and
//! multi-process, over the in-process, threaded-TCP and multiplexed
//! transports — under one scenario seed, because persona assignment is
//! a pure function of `(scenario seed, client id)` and every transform
//! is applied client-side. Robust aggregation must hold the committed
//! model near the clean reference where plain FedAvg is dragged away,
//! and a colluding coalition's observation log must feed the
//! fleet-scale membership inference harness.

use std::sync::Arc;

use gradsec::attacks::fleet::{coalition_attack_auc, FleetMiaConfig};
use gradsec::data::SyntheticMicro;
use gradsec::fl::config::{TrainingPlan, TransportKind};
use gradsec::fl::message::{DatasetSpec, ModelSpec};
use gradsec::fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec::fl::{AdversaryPlan, Aggregator, DistributedCoordinator, ExecutionEngine};
use gradsec::nn::model::ModelWeights;
use gradsec::nn::zoo;

const CLIENTS: usize = 16;
const DIM: usize = 12;
const DATA_LEN: usize = 16 * CLIENTS;
const DATA_SEED: u64 = 5;
const MODEL_SEED: u64 = 21;
const SCENARIO_SEED: u64 = 0xAD5;

fn plan() -> TrainingPlan {
    TrainingPlan {
        rounds: 3,
        clients_per_round: 6,
        batches_per_cycle: 2,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 17,
    }
}

/// A fleet with every persona active: a fifth of the fleet poisons,
/// plus scalers, free-riders and a colluding coalition.
fn scenario() -> AdversaryPlan {
    AdversaryPlan::seeded(SCENARIO_SEED)
        .poisoners(0.2)
        .scalers(0.1)
        .free_riders(0.1)
        .colluders(0.1)
}

fn builder() -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(DATA_LEN, 2, DIM, DATA_SEED));
    Federation::builder(plan())
        .model(|| zoo::tiny_mlp(DIM, 6, 2, MODEL_SEED).unwrap())
        .clients(CLIENTS, data)
}

fn l2(a: &ModelWeights, b: &ModelWeights) -> f64 {
    let mut sum = 0.0f64;
    for (x, y) in a.iter().zip(b.iter()) {
        for (p, q) in x.w.data().iter().zip(y.w.data()) {
            sum += f64::from(p - q) * f64::from(p - q);
        }
        for (p, q) in x.b.data().iter().zip(y.b.data()) {
            sum += f64::from(p - q) * f64::from(p - q);
        }
    }
    sum.sqrt()
}

#[test]
fn hostile_fleet_is_bit_identical_across_runners_and_transports() {
    let mut reference: Option<(FederationReport, ModelWeights)> = None;
    for transport in [
        TransportKind::InProcess,
        TransportKind::Tcp,
        TransportKind::TcpMux,
    ] {
        for (shards, workers) in [(1usize, 1usize), (1, 4), (3, 2)] {
            let b = builder()
                .adversaries(scenario())
                .transport(transport)
                .engine(ExecutionEngine::new(workers));
            let (report, weights) = if shards == 1 {
                let mut fed = b.build().unwrap();
                let report = fed.run().unwrap();
                let weights = fed.server().global().clone();
                fed.shutdown().unwrap();
                (report, weights)
            } else {
                let mut fed = b.shards(shards).build_sharded().unwrap();
                let report = fed.run().unwrap();
                let weights = fed.server().global().clone();
                fed.shutdown().unwrap();
                (report, weights)
            };
            match &reference {
                None => {
                    assert_eq!(report.rounds_completed, 3);
                    reference = Some((report, weights));
                }
                Some((want_report, want_weights)) => {
                    assert_eq!(
                        &report, want_report,
                        "{transport:?} x {shards} shards x {workers} workers: report diverged"
                    );
                    assert_eq!(
                        &weights, want_weights,
                        "{transport:?} x {shards} shards x {workers} workers: weights diverged"
                    );
                }
            }
        }
    }
    // The same hostile fleet across real process boundaries: the shard
    // servers re-derive identical personas from the shipped scenario.
    let (want_report, want_weights) = reference.expect("in-process reference built");
    for (procs, workers) in [(2usize, 2usize), (4, 1)] {
        let mut coord = DistributedCoordinator::builder(plan())
            .clients(
                CLIENTS,
                DatasetSpec::Micro {
                    len: DATA_LEN as u64,
                    classes: 2,
                    dim: DIM as u64,
                    seed: DATA_SEED,
                },
            )
            .model(ModelSpec::TinyMlp {
                inputs: DIM as u64,
                hidden: 6,
                outputs: 2,
                seed: MODEL_SEED,
            })
            .adversaries(scenario())
            .shards(procs)
            .workers(workers)
            .launch()
            .unwrap();
        let report = coord.run().unwrap();
        assert_eq!(
            report, want_report,
            "{procs} processes x {workers} workers: hostile report diverged"
        );
        assert_eq!(
            coord.server().global(),
            &want_weights,
            "{procs} processes x {workers} workers: hostile weights diverged"
        );
        coord.shutdown().unwrap();
    }
}

#[test]
fn robust_aggregation_holds_where_fedavg_degrades() {
    // Clean reference: no adversaries, plain FedAvg.
    let mut clean = builder().build().unwrap();
    clean.run().unwrap();
    let clean_weights = clean.server().global().clone();
    clean.shutdown().unwrap();

    // A third of the fleet poisons hard.
    let hostile = AdversaryPlan::seeded(SCENARIO_SEED)
        .poisoners(0.34)
        .poison_strength(4.0)
        .poison_noise(0.5);
    let run_hostile = |aggregator: Aggregator| {
        let mut fed = builder()
            .adversaries(hostile.clone())
            .aggregator(aggregator)
            .build()
            .unwrap();
        fed.run().unwrap();
        let w = fed.server().global().clone();
        fed.shutdown().unwrap();
        w
    };
    let poisoned_fedavg = l2(&run_hostile(Aggregator::FedAvg), &clean_weights);
    for robust in [Aggregator::Median, Aggregator::TrimmedMean { trim: 2 }] {
        let drift = l2(&run_hostile(robust), &clean_weights);
        assert!(
            drift < poisoned_fedavg,
            "{} drifted {drift} from clean, fedavg {poisoned_fedavg}",
            robust.name()
        );
    }
}

#[test]
fn collusion_log_feeds_fleet_scale_membership_inference() {
    // Every client colludes: the coalition observes each round's global
    // snapshot, and the pooled log drives the fleet MIA end to end.
    let data = SyntheticMicro::new(DATA_LEN, 2, DIM, DATA_SEED);
    let mut fed = builder()
        .adversaries(AdversaryPlan::seeded(SCENARIO_SEED).colluders(1.0))
        .build()
        .unwrap();
    fed.run().unwrap();
    let log = fed
        .collusion_log()
        .expect("adversarial run keeps a collusion log")
        .clone();
    fed.shutdown().unwrap();
    assert!(!log.colluders().is_empty(), "whole fleet colludes");
    let snapshots = log.snapshots();
    assert_eq!(snapshots.len(), log.rounds_observed());
    assert!(!snapshots.is_empty());

    let mut model = zoo::tiny_mlp(DIM, 6, 2, MODEL_SEED).unwrap();
    let members: Vec<usize> = (0..12).collect();
    let non_members: Vec<usize> = (DATA_LEN - 12..DATA_LEN).collect();
    let report = coalition_attack_auc(
        &mut model,
        &snapshots,
        &data,
        &members,
        &non_members,
        &[],
        &FleetMiaConfig::default(),
    )
    .unwrap();
    assert_eq!(report.per_round.len(), snapshots.len());
    assert_eq!(report.rows, snapshots.len() * 24);
    assert!((0.0..=1.0).contains(&report.pooled_auc));
}
