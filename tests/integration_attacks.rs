//! Cross-crate attack integration: the leakage model, `D_grad` semantics
//! and the attacks agree about what a protection policy hides.

use gradsec::attacks::dgrad::GradientDataset;
use gradsec::attacks::dria::{run_dria, DriaConfig};
use gradsec::attacks::features::reduce_snapshot;
use gradsec::attacks::metrics::auc;
use gradsec::core::leakage::LeakageModel;
use gradsec::core::ProtectionPolicy;
use gradsec::data::{one_hot, Dataset, SyntheticCifar100};
use gradsec::nn::zoo;

#[test]
fn leakage_model_and_dgrad_agree_on_deleted_columns() {
    let ds = SyntheticCifar100::with_classes(8, 4, 1);
    let mut model = zoo::lenet5_with(4, 2).unwrap();
    let s = ds.sample(0);
    let x = s.image.reshape(&[1, 3, 32, 32]).unwrap();
    let y = one_hot(&[s.label], 4);
    let (_, snap) = model.forward_backward(&x, &y).unwrap();
    let policy = ProtectionPolicy::static_layers(&[1, 4]).unwrap();
    let leakage = LeakageModel::new(policy, 5);
    // Tensor-level view: protected layers zeroed.
    let (view, deleted) = leakage.attacker_view(&snap, 0);
    assert_eq!(deleted, vec![1, 4]);
    assert!(view.layer(1).unwrap().dw.data().iter().all(|&v| v == 0.0));
    assert!(view.layer(0).unwrap().dw.data().iter().any(|&v| v != 0.0));
    // Column-level view: the same layers' feature spans become missing.
    let (features, layout) = reduce_snapshot(&snap, 4);
    let mut dgrad = GradientDataset::new(layout.clone());
    dgrad.push(features, true, &deleted).unwrap();
    let expected_missing: usize = deleted
        .iter()
        .filter_map(|&l| layout.span_of(l))
        .map(|s| s.len)
        .sum();
    let total = layout.width();
    assert!((dgrad.missing_fraction() - expected_missing as f32 / total as f32).abs() < 1e-6);
    // The leaked fraction of scalars matches the unprotected share.
    let frac = leakage.leaked_fraction(&snap, 0);
    assert!(frac > 0.0 && frac < 1.0);
}

#[test]
fn dria_respects_the_leakage_model() {
    // Hiding everything forces the matching objective to zero and leaves
    // the dummy at noise; hiding nothing lets it reconstruct.
    let ds = SyntheticCifar100::with_classes(8, 4, 2);
    let s = ds.sample(1);
    let target = s.image.reshape(&[1, 3, 32, 32]).unwrap();
    let label = one_hot(&[s.label], 4);
    let mut model = zoo::lenet5_smooth_with(4, 3).unwrap();
    let cfg = DriaConfig {
        iterations: 60,
        seed: 5,
        ..DriaConfig::default()
    };
    let all_hidden = run_dria(&mut model, &target, &label, &[0, 1, 2, 3, 4], &cfg).unwrap();
    assert_eq!(all_hidden.final_objective, 0.0);
    let open = run_dria(&mut model, &target, &label, &[], &cfg).unwrap();
    assert!(
        open.image_loss < all_hidden.image_loss,
        "open {} !< hidden {}",
        open.image_loss,
        all_hidden.image_loss
    );
}

#[test]
fn auc_of_random_scores_is_near_half() {
    // Statistical sanity across the metrics stack: random scores on
    // balanced labels give AUC ~0.5.
    let scores: Vec<f32> = (0..2000)
        .map(|i| ((i * 37) % 1000) as f32 / 1000.0)
        .collect();
    let labels: Vec<bool> = (0..2000).map(|i| (i * 53) % 2 == 0).collect();
    let a = auc(&scores, &labels).unwrap();
    assert!((a - 0.5).abs() < 0.05, "auc {a}");
}

#[test]
fn dynamic_policy_varies_dgrad_missingness_across_cycles() {
    use gradsec::core::window::MovingWindow;
    let ds = SyntheticCifar100::with_classes(8, 4, 4);
    let mut model = zoo::lenet5_with(4, 5).unwrap();
    let s = ds.sample(0);
    let x = s.image.reshape(&[1, 3, 32, 32]).unwrap();
    let y = one_hot(&[s.label], 4);
    let (_, snap) = model.forward_backward(&x, &y).unwrap();
    let (features, layout) = reduce_snapshot(&snap, 4);
    let window = MovingWindow::uniform(2, 5, 9).unwrap();
    let policy = ProtectionPolicy::dynamic(window);
    let leakage = LeakageModel::new(policy, 5);
    let mut dgrad = GradientDataset::new(layout);
    let mut patterns = std::collections::HashSet::new();
    for round in 0..20u64 {
        let protected = leakage.protected(round);
        patterns.insert(protected.clone());
        dgrad
            .push(features.clone(), round % 2 == 0, &protected)
            .unwrap();
    }
    assert!(patterns.len() > 1, "window must visit multiple positions");
    assert!(dgrad.missing_fraction() > 0.0);
    // Imputation fills every hole.
    let dense = dgrad.impute();
    assert!(dense.data().iter().all(|v| v.is_finite()));
}
