//! Backend invariance across the federation stack.
//!
//! The kernel backend is a *whole-run* policy: `FederationBuilder::
//! backend(...)` points the prototype model at one kernel set and every
//! client replica (and every per-worker copy the engine makes) inherits
//! it. Within one backend, runs must stay bit-identical across
//! sequential/parallel engines, flat/sharded fleets and transports —
//! exactly the guarantee the pre-backend stack had, now parameterised by
//! `BackendKind`. Across backends only f32 rounding may differ.
//!
//! The model is a small LeNet-style conv stack so the conv, pool, dense
//! and elementwise kernels are all exercised, not just matmul.

use std::sync::Arc;

use gradsec::data::SyntheticCifar100;
use gradsec::fl::config::{TrainingPlan, TransportKind};
use gradsec::fl::faults::FaultPlan;
use gradsec::fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec::fl::ExecutionEngine;
use gradsec::nn::model::ModelWeights;
use gradsec::nn::{zoo, BackendKind, Sequential};

const CLIENTS: usize = 4;

fn plan() -> TrainingPlan {
    TrainingPlan {
        rounds: 2,
        clients_per_round: 2,
        batches_per_cycle: 1,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 23,
    }
}

fn model() -> Sequential {
    // LeNet-5 shrunk to a 2-class head: 4 conv layers + 1 dense.
    zoo::lenet5_with(2, 11).expect("model builds")
}

fn builder(backend: BackendKind) -> FederationBuilder {
    let data = Arc::new(SyntheticCifar100::with_classes(8 * CLIENTS, 2, 3));
    Federation::builder(plan())
        .model(model)
        .clients(CLIENTS, data)
        .backend(backend)
}

fn run_flat(backend: BackendKind, workers: usize) -> (FederationReport, ModelWeights) {
    let mut fed = builder(backend).build().expect("flat federation builds");
    let engine = if workers <= 1 {
        ExecutionEngine::sequential()
    } else {
        ExecutionEngine::new(workers)
    };
    let report = fed.run_with(&engine).expect("flat run completes");
    let weights = fed.server().global().clone();
    fed.shutdown().expect("clean teardown");
    (report, weights)
}

fn run_sharded(
    backend: BackendKind,
    shards: usize,
    workers: usize,
    transport: TransportKind,
) -> (FederationReport, ModelWeights) {
    let mut fed = builder(backend)
        .shards(shards)
        .engine(ExecutionEngine::new(workers))
        .transport(transport)
        .build_sharded()
        .expect("sharded federation builds");
    let report = fed.run().expect("sharded run completes");
    let weights = fed.server().global().clone();
    fed.shutdown().expect("clean teardown");
    (report, weights)
}

/// Within one backend, flat-sequential, flat-parallel and sharded runs
/// (in-process and TCP) are all bit-identical.
#[test]
fn runs_are_bit_identical_within_each_backend() {
    for backend in BackendKind::ALL {
        let (reference, ref_weights) = run_flat(backend, 1);
        assert_eq!(reference.rounds_completed, plan().rounds);
        for workers in [2usize, 4] {
            let (report, weights) = run_flat(backend, workers);
            assert_eq!(
                report, reference,
                "{backend}: {workers}-worker flat diverged"
            );
            assert_eq!(
                weights, ref_weights,
                "{backend}: {workers}-worker weights diverged"
            );
        }
        for (shards, workers) in [(2usize, 1usize), (2, 2), (4, 2)] {
            let (report, weights) = run_sharded(backend, shards, workers, TransportKind::InProcess);
            assert_eq!(
                report, reference,
                "{backend}: {shards}x{workers} sharded diverged"
            );
            assert_eq!(
                weights, ref_weights,
                "{backend}: {shards}x{workers} weights diverged"
            );
        }
        let (report, weights) = run_sharded(backend, 2, 2, TransportKind::Tcp);
        assert_eq!(report, reference, "{backend}: TCP sharded diverged");
        assert_eq!(weights, ref_weights, "{backend}: TCP weights diverged");
    }
}

/// Faulted runs are bit-identical within a backend too: the fault plan
/// is a pure function of its seed, and the backend only changes kernel
/// arithmetic, never control flow.
#[test]
fn faulted_runs_are_bit_identical_within_each_backend() {
    let faults = || FaultPlan::seeded(41).dropout(0.3).spare(2);
    for backend in BackendKind::ALL {
        let run = |shards: usize, workers: usize| {
            let mut fed = builder(backend)
                .faults(faults())
                .shards(shards)
                .engine(ExecutionEngine::new(workers))
                .build_sharded()
                .expect("faulted federation builds");
            let report = fed.run().expect("faulted run completes");
            let weights = fed.server().global().clone();
            fed.shutdown().expect("clean teardown");
            (report, weights)
        };
        let (reference, ref_weights) = run(1, 1);
        // The chaos must be real for the property to mean anything.
        assert!(
            reference
                .rounds
                .iter()
                .any(|r| !r.failures.is_empty() || !r.surplus.is_empty()),
            "{backend}: fault plan injected nothing"
        );
        for (shards, workers) in [(2usize, 2usize), (4, 1)] {
            let (report, weights) = run(shards, workers);
            assert_eq!(
                report, reference,
                "{backend}: faulted {shards}x{workers} diverged"
            );
            assert_eq!(weights, ref_weights, "{backend}: faulted weights diverged");
        }
    }
}

/// The builder default is the `GRADSEC_BACKEND` selection (reference
/// when unset) and is bit-identical to passing that kind explicitly;
/// blocked runs land within kernel-rounding distance of reference but
/// are *not* required to match bits. Comparing against `from_env()`
/// rather than a hardcoded `Reference` keeps the test meaningful when
/// the whole suite is run under a `GRADSEC_BACKEND` override.
#[test]
fn backends_agree_within_rounding_and_default_follows_env() {
    let data = Arc::new(SyntheticCifar100::with_classes(8 * CLIENTS, 2, 3));
    let mut default_fed = Federation::builder(plan())
        .model(model)
        .clients(CLIENTS, data)
        .build()
        .expect("default federation builds");
    let default_report = default_fed.run().expect("default run completes");
    let default_weights = default_fed.server().global().clone();
    default_fed.shutdown().expect("clean teardown");

    let (env_report, env_weights) = run_flat(BackendKind::from_env(), 1);
    assert_eq!(
        default_report, env_report,
        "default backend is not the GRADSEC_BACKEND selection"
    );
    assert_eq!(default_weights, env_weights);

    let (ref_report, ref_weights) = run_flat(BackendKind::Reference, 1);

    let (blk_report, blk_weights) = run_flat(BackendKind::Blocked, 1);
    assert_eq!(blk_report.rounds_completed, ref_report.rounds_completed);
    for (r, b) in ref_report.rounds.iter().zip(&blk_report.rounds) {
        assert_eq!(
            r.participants, b.participants,
            "selection must not depend on backend"
        );
        assert!(
            (r.mean_loss - b.mean_loss).abs() < 1e-3,
            "round {}: loss {} vs {}",
            r.round,
            r.mean_loss,
            b.mean_loss
        );
    }
    for (a, b) in ref_weights.iter().zip(blk_weights.iter()) {
        assert!(
            a.w.approx_eq(&b.w, 1e-2),
            "weights drifted past rounding distance"
        );
        assert!(a.b.approx_eq(&b.b, 1e-2));
    }

    // The tiled backend (register-tiled GEMM, virtual-im2col conv,
    // fused activations — whichever micro-kernel ISA the host resolves)
    // honours the same whole-run contract: identical control flow,
    // kernel arithmetic within rounding distance of reference.
    let (tld_report, tld_weights) = run_flat(BackendKind::Tiled, 1);
    assert_eq!(tld_report.rounds_completed, ref_report.rounds_completed);
    for (r, t) in ref_report.rounds.iter().zip(&tld_report.rounds) {
        assert_eq!(
            r.participants, t.participants,
            "selection must not depend on backend"
        );
        assert!(
            (r.mean_loss - t.mean_loss).abs() < 1e-3,
            "round {}: loss {} vs {}",
            r.round,
            r.mean_loss,
            t.mean_loss
        );
    }
    for (a, t) in ref_weights.iter().zip(tld_weights.iter()) {
        assert!(
            a.w.approx_eq(&t.w, 1e-2),
            "tiled weights drifted past rounding distance"
        );
        assert!(a.b.approx_eq(&t.b, 1e-2));
    }
}
