//! Update-codec parity: the encoded model-payload path must be
//! invisible when it should be and cheap when it may be.
//!
//! * The identity codec keeps every deployment shape — flat, sharded,
//!   distributed — and every transport — in-process, threaded TCP,
//!   multiplexed TCP — bit-identical to the dense reference, with and
//!   without seeded faults, and bills encoded == raw bytes.
//! * The lossy codecs (`int8`, `delta-topk`) are deterministic pure
//!   functions of the run: the same codec produces the same bits on any
//!   transport and shape, shrinks the steady-state round's payload, and
//!   stays within a pinned divergence bound of the identity run.

use std::sync::Arc;

use gradsec::data::SyntheticMicro;
use gradsec::fl::config::{TrainingPlan, TransportKind};
use gradsec::fl::message::{DatasetSpec, ModelSpec};
use gradsec::fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec::fl::{CodecKind, DistributedCoordinator, ExecutionEngine, FaultPlan};
use gradsec::nn::model::ModelWeights;
use gradsec::nn::zoo;

const CLIENTS: usize = 6;
const DIM: usize = 32;
const HIDDEN: usize = 16;
const DATA_LEN: usize = 8 * CLIENTS;
const DATA_SEED: u64 = 5;
const MODEL_SEED: u64 = 21;

fn plan() -> TrainingPlan {
    TrainingPlan {
        rounds: 3,
        clients_per_round: CLIENTS,
        batches_per_cycle: 1,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 17,
    }
}

fn builder(codec: CodecKind) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(DATA_LEN, 2, DIM, DATA_SEED));
    Federation::builder(plan())
        .model(|| zoo::tiny_mlp(DIM, HIDDEN, 2, MODEL_SEED).unwrap())
        .clients(CLIENTS, data)
        .codec(codec)
}

fn run_flat(
    codec: CodecKind,
    transport: TransportKind,
    faults: Option<FaultPlan>,
) -> (FederationReport, ModelWeights) {
    let mut b = builder(codec).transport(transport);
    if let Some(f) = faults {
        b = b.faults(f);
    }
    let mut fed = b.build().unwrap();
    let report = fed.run().unwrap();
    let weights = fed.server().global().clone();
    fed.shutdown().unwrap();
    (report, weights)
}

fn fault_plan() -> FaultPlan {
    FaultPlan::seeded(0xFA417)
        .dropout(0.2)
        .garble_replies(0.1)
        .crash_at(3, 1)
        .deadline_s(30.0)
        .spare(2)
}

fn max_abs_diff(a: &ModelWeights, b: &ModelWeights) -> f32 {
    a.iter()
        .zip(b.iter())
        .flat_map(|(x, y)| {
            x.w.data()
                .iter()
                .zip(y.w.data())
                .chain(x.b.data().iter().zip(y.b.data()))
        })
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f32, f32::max)
}

#[test]
fn identity_codec_is_bit_identical_across_transports_and_shapes() {
    let (ref_report, ref_weights) = run_flat(CodecKind::Identity, TransportKind::InProcess, None);
    assert_eq!(ref_report.rounds_completed, 3);
    // Identity bills the encoded column equal to the raw column.
    for round in &ref_report.rounds {
        let wire = round.ledger.total_wire();
        assert!(wire.encoded_bytes() > 0, "rounds must bill wire bytes");
        assert_eq!(wire.encoded_bytes(), wire.raw_bytes());
    }

    for transport in [TransportKind::Tcp, TransportKind::TcpMux] {
        let (report, weights) = run_flat(CodecKind::Identity, transport, None);
        assert_eq!(report, ref_report, "{transport:?} diverged from reference");
        assert_eq!(weights, ref_weights);
    }

    let mut sharded = builder(CodecKind::Identity)
        .transport(TransportKind::TcpMux)
        .shards(2)
        .engine(ExecutionEngine::new(2))
        .build_sharded()
        .unwrap();
    let report = sharded.run().unwrap();
    assert_eq!(report, ref_report, "sharded mux diverged from reference");
    assert_eq!(sharded.server().global(), &ref_weights);
    sharded.shutdown().unwrap();

    let mut coord = DistributedCoordinator::builder(plan())
        .clients(
            CLIENTS,
            DatasetSpec::Micro {
                len: DATA_LEN as u64,
                classes: 2,
                dim: DIM as u64,
                seed: DATA_SEED,
            },
        )
        .model(ModelSpec::TinyMlp {
            inputs: DIM as u64,
            hidden: HIDDEN as u64,
            outputs: 2,
            seed: MODEL_SEED,
        })
        .codec(CodecKind::Identity)
        .shards(2)
        .workers(2)
        .launch()
        .unwrap();
    let report = coord.run().unwrap();
    assert_eq!(report, ref_report, "distributed diverged from reference");
    assert_eq!(coord.server().global(), &ref_weights);
    coord.shutdown().unwrap();
}

#[test]
fn identity_codec_is_bit_identical_under_faults() {
    let (ref_report, ref_weights) = run_flat(
        CodecKind::Identity,
        TransportKind::InProcess,
        Some(fault_plan()),
    );
    for transport in [TransportKind::Tcp, TransportKind::TcpMux] {
        let (report, weights) = run_flat(CodecKind::Identity, transport, Some(fault_plan()));
        assert_eq!(
            report, ref_report,
            "faulted {transport:?} diverged from reference"
        );
        assert_eq!(weights, ref_weights);
    }
}

#[test]
fn lossy_codecs_are_deterministic_and_transport_invariant() {
    for codec in [CodecKind::Int8, CodecKind::DeltaTopK] {
        let (first, first_weights) = run_flat(codec, TransportKind::InProcess, None);
        let (again, again_weights) = run_flat(codec, TransportKind::InProcess, None);
        assert_eq!(first, again, "{} is not deterministic", codec.name());
        assert_eq!(first_weights, again_weights);
        for transport in [TransportKind::Tcp, TransportKind::TcpMux] {
            let (report, weights) = run_flat(codec, transport, None);
            assert_eq!(
                report,
                first,
                "{} over {transport:?} diverged from in-process",
                codec.name()
            );
            assert_eq!(weights, first_weights);
        }
    }
}

#[test]
fn lossy_codecs_shrink_bytes_and_stay_near_the_identity_run() {
    let (ref_report, ref_weights) = run_flat(CodecKind::Identity, TransportKind::InProcess, None);
    let dense = ref_report.rounds.last().unwrap().ledger.total_wire();
    for (codec, bound) in [(CodecKind::Int8, 0.02f32), (CodecKind::DeltaTopK, 0.10)] {
        let (report, weights) = run_flat(codec, TransportKind::InProcess, None);
        assert_eq!(report.rounds_completed, ref_report.rounds_completed);
        // Steady state is the last round: the delta codec's first
        // exchange is dense (no committed view yet).
        let wire = report.rounds.last().unwrap().ledger.total_wire();
        assert_eq!(wire.raw_bytes(), dense.raw_bytes());
        assert!(
            wire.encoded_bytes() * 3 <= wire.raw_bytes(),
            "{}: {} encoded vs {} raw is under 3x",
            codec.name(),
            wire.encoded_bytes(),
            wire.raw_bytes()
        );
        let divergence = max_abs_diff(&weights, &ref_weights);
        assert!(
            divergence <= bound,
            "{}: diverged {divergence} from the identity run (bound {bound})",
            codec.name()
        );
        assert!(divergence > 0.0, "{} should be lossy", codec.name());
    }
}

#[test]
fn delta_codec_survives_faulted_rounds_deterministically() {
    // Garbled replies and crashes desynchronize the delta codec's
    // reference views; the epoch handshake must recover (dense retry)
    // and stay a pure function of the fault seed on every transport.
    let (ref_report, ref_weights) = run_flat(
        CodecKind::DeltaTopK,
        TransportKind::InProcess,
        Some(fault_plan()),
    );
    assert!(ref_report.rounds_completed > 0);
    for transport in [TransportKind::Tcp, TransportKind::TcpMux] {
        let (report, weights) = run_flat(CodecKind::DeltaTopK, transport, Some(fault_plan()));
        assert_eq!(
            report, ref_report,
            "faulted delta-topk over {transport:?} diverged"
        );
        assert_eq!(weights, ref_weights);
    }
}

#[test]
fn sessions_report_their_negotiated_codec() {
    let fed = builder(CodecKind::Int8).build().unwrap();
    assert!(fed.clients().iter().all(|c| c.codec() == CodecKind::Int8));
    fed.shutdown().unwrap();
}
