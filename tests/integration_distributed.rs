//! Multi-process federation: a fleet split across real shard-server
//! child processes over loopback must produce the *same bits* as the
//! flat in-process federation — same `FederationReport` and same final
//! global weights — for every process count, with and without injected
//! faults. A killed shard process must downgrade to an excluded cohort,
//! never a process-wide failure.

use std::sync::Arc;

use gradsec::core::ProtectionPolicy;
use gradsec::data::SyntheticMicro;
use gradsec::fl::config::TrainingPlan;
use gradsec::fl::faults::FaultPlan;
use gradsec::fl::message::{DatasetSpec, ModelSpec};
use gradsec::fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec::fl::{DistributedCoordinator, ExecutionEngine};
use gradsec::nn::model::ModelWeights;
use gradsec::nn::zoo;

const CLIENTS: usize = 8;
const DIM: usize = 12;
const DATA_LEN: usize = 16 * CLIENTS;
const DATA_SEED: u64 = 5;
const MODEL_SEED: u64 = 21;

fn plan() -> TrainingPlan {
    TrainingPlan {
        rounds: 3,
        clients_per_round: 5,
        batches_per_cycle: 2,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 17,
    }
}

fn dataset_spec() -> DatasetSpec {
    DatasetSpec::Micro {
        len: DATA_LEN as u64,
        classes: 2,
        dim: DIM as u64,
        seed: DATA_SEED,
    }
}

fn model_spec() -> ModelSpec {
    ModelSpec::TinyMlp {
        inputs: DIM as u64,
        hidden: 6,
        outputs: 2,
        seed: MODEL_SEED,
    }
}

/// The flat in-process federation built from the *same recipe* the
/// shard servers reconstruct from their `ShardConfig` (same dataset
/// spec, model spec, all-TrustZone devices, plain SGD trainers).
fn flat_builder() -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(DATA_LEN, 2, DIM, DATA_SEED));
    Federation::builder(plan())
        .model(|| zoo::tiny_mlp(DIM, 6, 2, MODEL_SEED).unwrap())
        .clients(CLIENTS, data)
        .scheduler(ProtectionPolicy::static_layers(&[1]).unwrap())
}

fn flat_reference(faults: Option<FaultPlan>) -> (FederationReport, ModelWeights) {
    let mut builder = flat_builder();
    if let Some(f) = faults {
        builder = builder.faults(f);
    }
    let mut fed = builder.build().unwrap();
    let report = fed.run().unwrap();
    let weights = fed.server().global().clone();
    fed.shutdown().unwrap();
    (report, weights)
}

fn distributed(shards: usize, workers: usize) -> gradsec::fl::distributed::DistributedBuilder {
    DistributedCoordinator::builder(plan())
        .clients(CLIENTS, dataset_spec())
        .model(model_spec())
        .scheduler(ProtectionPolicy::static_layers(&[1]).unwrap())
        .shards(shards)
        .workers(workers)
}

#[test]
fn distributed_report_is_invariant_across_processes_and_workers() {
    let (flat_report, flat_weights) = flat_reference(None);
    assert_eq!(flat_report.rounds_completed, 3);
    for (shards, workers) in [(1usize, 2usize), (2, 1), (4, 2)] {
        let mut coord = distributed(shards, workers).launch().unwrap();
        let report = coord.run().unwrap();
        assert_eq!(
            report, flat_report,
            "{shards} processes x {workers} workers: report diverged from flat"
        );
        assert_eq!(
            coord.server().global(),
            &flat_weights,
            "{shards} processes x {workers} workers: weights diverged from flat"
        );
        let (sent, received) = coord.bytes_on_wire();
        assert!(sent > 0 && received > 0, "no bytes crossed the wire");
        coord.shutdown().unwrap();
    }
}

#[test]
fn distributed_matches_inprocess_sharding() {
    // Same shard count, one crossing processes, one staying in-process:
    // the process boundary must be invisible in the bits.
    let mut fed = flat_builder()
        .shards(2)
        .engine(ExecutionEngine::new(2))
        .build_sharded()
        .unwrap();
    let sharded_report = fed.run().unwrap();
    let sharded_weights = fed.server().global().clone();
    fed.shutdown().unwrap();

    let mut coord = distributed(2, 2).launch().unwrap();
    let report = coord.run().unwrap();
    assert_eq!(report, sharded_report);
    assert_eq!(coord.server().global(), &sharded_weights);
    coord.shutdown().unwrap();
}

#[test]
fn distributed_fault_injection_matches_flat() {
    let faults = FaultPlan::seeded(0xFA417)
        .dropout(0.2)
        .crash_at(3, 1)
        .deadline_s(30.0)
        .spare(2);
    let (flat_report, flat_weights) = flat_reference(Some(faults.clone()));
    for shards in [2usize, 4] {
        let mut coord = distributed(shards, 2)
            .faults(faults.clone())
            .launch()
            .unwrap();
        let report = coord.run().unwrap();
        assert_eq!(
            report, flat_report,
            "{shards} processes: faulted report diverged from flat"
        );
        assert_eq!(coord.server().global(), &flat_weights);
        coord.shutdown().unwrap();
    }
}

#[test]
fn distributed_screening_cap_matches_flat() {
    let mut fed = flat_builder().screening_sample(6).build().unwrap();
    let flat_report = fed.run().unwrap();
    let flat_weights = fed.server().global().clone();
    fed.shutdown().unwrap();

    let mut coord = distributed(2, 1).screening_sample(6).launch().unwrap();
    let report = coord.run().unwrap();
    assert_eq!(report, flat_report, "screening cap diverged from flat");
    assert_eq!(coord.server().global(), &flat_weights);
    coord.shutdown().unwrap();
}

#[test]
fn killed_shard_downgrades_to_excluded_cohort() {
    let mut coord = distributed(2, 1).launch().unwrap();
    let first = coord.run_round().unwrap();
    assert_eq!(first.participants.len(), 5);

    // SIGKILL the second shard's process: clients 4..8 are gone. The
    // federation must keep committing rounds from the surviving shard
    // instead of failing outright.
    coord.kill_shard(1).unwrap();
    assert!(coord.shard_alive(0));
    assert!(!coord.shard_alive(1));

    let dead_range = coord.layout().range(1);
    for _ in 1..plan().rounds {
        let report = coord.run_round().unwrap();
        assert!(
            !report.participants.is_empty(),
            "surviving shard should keep committing"
        );
        assert!(
            report
                .participants
                .iter()
                .all(|&c| !dead_range.contains(&c)),
            "dead shard's clients must be excluded: {:?}",
            report.participants
        );
        assert_eq!(report.ledger.len(), report.participants.len());
    }
    // Teardown must not report the deliberate kill as an error.
    coord.shutdown().unwrap();
}
