//! End-to-end integration: federation + secure trainer + protection
//! schedule, spanning every crate in the workspace.

use std::sync::Arc;

use gradsec::core::trainer::SecureTrainer;
use gradsec::core::window::MovingWindow;
use gradsec::core::ProtectionPolicy;
use gradsec::data::{batch_of, SyntheticCifar100};
use gradsec::fl::client::DeviceProfile;
use gradsec::fl::config::TrainingPlan;
use gradsec::fl::runner::Federation;
use gradsec::nn::zoo;

fn plan(rounds: u64) -> TrainingPlan {
    TrainingPlan {
        rounds,
        clients_per_round: 2,
        batches_per_cycle: 2,
        batch_size: 8,
        learning_rate: 0.05,
        seed: 3,
    }
}

#[test]
fn static_protected_federation_trains_and_reports() {
    let data = Arc::new(SyntheticCifar100::with_classes(96, 3, 5));
    let policy = ProtectionPolicy::static_layers(&[1, 4]).unwrap();
    let mut fed = Federation::builder(plan(3))
        .model(|| zoo::lenet5_with(3, 9).expect("builds"))
        .clients(3, data.clone())
        .trainer(|_| Box::new(SecureTrainer::new()))
        .scheduler(policy)
        .build()
        .unwrap();
    let report = fed.run().unwrap();
    assert_eq!(report.rounds_completed, 3);
    for r in &report.rounds {
        assert_eq!(r.protected_layers, vec![1, 4]);
    }
    // Participating clients charged enclave time and memory — the
    // accounting now travels on the wire with every upload and lands in
    // the round ledger.
    let ledger = &report.rounds.last().expect("rounds ran").ledger;
    let entry = ledger.entries().first().expect("at least one participant");
    assert!(entry.time.kernel_s > 0.0, "kernel time charged");
    assert!(entry.time.alloc_s > 0.0, "allocation time charged");
    // L2 + L5 of the 3-class LeNet at batch 8: exactly 219,576 bytes
    // (2 params-copies + activations, see the core memory model).
    assert_eq!(entry.tee_peak_bytes, 219_576);
}

#[test]
fn dynamic_federation_moves_the_window() {
    let data = Arc::new(SyntheticCifar100::with_classes(96, 3, 5));
    let window = MovingWindow::new(2, 5, vec![0.25, 0.25, 0.25, 0.25], 17).unwrap();
    let policy = ProtectionPolicy::dynamic(window);
    let mut fed = Federation::builder(plan(6))
        .model(|| zoo::lenet5_with(3, 9).expect("builds"))
        .clients(2, data)
        .trainer(|_| Box::new(SecureTrainer::new()))
        .scheduler(policy)
        .build()
        .unwrap();
    let report = fed.run().unwrap();
    let sets: Vec<&Vec<usize>> = report.rounds.iter().map(|r| &r.protected_layers).collect();
    assert!(sets.iter().all(|s| s.len() == 2));
    assert!(
        sets.windows(2).any(|w| w[0] != w[1]),
        "the window should move across 6 rounds: {sets:?}"
    );
}

#[test]
fn mixed_fleet_trains_only_attested_tee_clients() {
    let data = Arc::new(SyntheticCifar100::with_classes(64, 2, 5));
    let mut fed = Federation::builder(plan(2))
        .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).expect("builds"))
        .devices(
            vec![
                DeviceProfile::trustzone(0),
                DeviceProfile::legacy(1),
                DeviceProfile::compromised(2),
                DeviceProfile::trustzone(3),
            ],
            data,
        )
        .build()
        .unwrap();
    let report = fed.run().unwrap();
    for r in &report.rounds {
        assert!(r.participants.iter().all(|&i| i == 0 || i == 3));
    }
    // The screened-out devices never reach the ledger either.
    for r in &report.rounds {
        assert!(r
            .ledger
            .entries()
            .iter()
            .all(|e| e.client_id == 0 || e.client_id == 3));
    }
}

#[test]
fn federated_model_learns_under_protection() {
    // Protection changes *where* computation runs, never its math:
    // the protected federation must learn exactly as well.
    let data = Arc::new(SyntheticCifar100::with_classes(120, 2, 5));
    let policy = ProtectionPolicy::static_layers(&[0, 4]).unwrap();
    let mut fed = Federation::builder(TrainingPlan {
        rounds: 8,
        clients_per_round: 3,
        batches_per_cycle: 3,
        batch_size: 8,
        learning_rate: 0.05,
        seed: 5,
    })
    .model(|| zoo::lenet5_with(2, 13).expect("builds"))
    .clients(3, data.clone())
    .trainer(|_| Box::new(SecureTrainer::new()))
    .scheduler(policy)
    .build()
    .unwrap();
    fed.run().unwrap();
    let mut model = zoo::lenet5_with(2, 13).unwrap();
    model.set_weights(fed.server().global()).unwrap();
    let idx: Vec<usize> = (0..120).collect();
    let (x, y) = batch_of(data.as_ref(), &idx);
    let acc = model.accuracy(&x, &y).unwrap();
    assert!(acc > 0.7, "protected federation accuracy only {acc}");
}

#[test]
fn history_supports_flaw1_gradient_recovery() {
    // The DPIA observable: consecutive snapshots diff back to aggregated
    // gradients (paper eq. 2 applied to the global model).
    let data = Arc::new(SyntheticCifar100::with_classes(64, 2, 5));
    let mut fed = Federation::builder(plan(2))
        .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).expect("builds"))
        .clients(2, data)
        .build()
        .unwrap();
    fed.run().unwrap();
    let g = fed
        .server()
        .history()
        .aggregated_gradients(0, 0.05)
        .unwrap()
        .expect("round 0 covered");
    assert!(!g.is_empty());
    assert!(g.to_flat().iter().any(|&x| x != 0.0));
}
