//! Engine determinism: the parallel round engine must be bit-identical
//! to the sequential runner — same round reports (including the TEE
//! ledger) and same final global weights — for any worker count.

use std::sync::Arc;

use gradsec::core::trainer::SecureTrainer;
use gradsec::core::ProtectionPolicy;
use gradsec::data::SyntheticCifar100;
use gradsec::fl::config::TrainingPlan;
use gradsec::fl::runner::{Federation, FederationReport};
use gradsec::fl::ExecutionEngine;
use gradsec::nn::model::ModelWeights;
use gradsec::nn::zoo;

fn lenet_federation() -> Federation {
    let data = Arc::new(SyntheticCifar100::with_classes(64, 2, 11));
    let policy = ProtectionPolicy::static_layers(&[1, 4]).unwrap();
    Federation::builder(TrainingPlan {
        rounds: 2,
        clients_per_round: 3,
        batches_per_cycle: 2,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 23,
    })
    .model(|| zoo::lenet5_with(2, 31).expect("LeNet-5 builds"))
    .clients(4, data)
    .trainer(|_| Box::new(SecureTrainer::new()))
    .scheduler(policy)
    .build()
    .unwrap()
}

fn run_with_workers(workers: usize) -> (FederationReport, ModelWeights) {
    let mut fed = lenet_federation();
    let engine = if workers == 0 {
        ExecutionEngine::sequential()
    } else {
        ExecutionEngine::new(workers)
    };
    let report = fed.run_with(&engine).unwrap();
    (report, fed.server().global().clone())
}

#[test]
fn parallel_engine_is_bit_identical_across_worker_counts() {
    let (seq_report, seq_weights) = run_with_workers(0);
    assert_eq!(seq_report.rounds_completed, 2);
    for workers in [1usize, 2, 4] {
        let (report, weights) = run_with_workers(workers);
        assert_eq!(
            seq_report, report,
            "{workers}-worker round reports diverged from sequential"
        );
        assert_eq!(
            seq_weights, weights,
            "{workers}-worker final weights diverged from sequential"
        );
    }
}

#[test]
fn round_ledger_carries_enclave_accounting_under_parallelism() {
    let mut fed = lenet_federation();
    let report = fed.run_with(&ExecutionEngine::new(3)).unwrap();
    for round in &report.rounds {
        let ledger = &round.ledger;
        assert_eq!(
            ledger.len(),
            round.participants.len(),
            "one ledger entry per participant"
        );
        // Entries are id-sorted regardless of worker completion order.
        let ids: Vec<u64> = ledger.entries().iter().map(|e| e.client_id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        // {L2, L5} protection charges enclave time, crossings and memory.
        assert!(ledger.total_time().kernel_s > 0.0);
        assert!(ledger.total_time().alloc_s > 0.0);
        assert!(ledger.total_crossings() > 0);
        assert!(ledger.max_tee_peak_bytes() > 0);
        // The critical path is at most the full bill, and positive.
        assert!(ledger.critical_path_s() > 0.0);
        assert!(ledger.critical_path_s() <= ledger.total_time().total_s() + 1e-12);
    }
}

#[test]
fn dynamic_policy_schedules_identically_on_every_engine() {
    let data = Arc::new(SyntheticCifar100::with_classes(48, 2, 7));
    let window = gradsec::core::window::MovingWindow::uniform(2, 5, 13).unwrap();
    let build = || {
        Federation::builder(TrainingPlan {
            rounds: 4,
            clients_per_round: 2,
            batches_per_cycle: 1,
            batch_size: 4,
            learning_rate: 0.05,
            seed: 9,
        })
        .model(|| zoo::lenet5_with(2, 3).expect("builds"))
        .clients(3, data.clone())
        .scheduler(ProtectionPolicy::dynamic(
            gradsec::core::window::MovingWindow::uniform(2, 5, 13).unwrap(),
        ))
        .build()
        .unwrap()
    };
    let mut seq = build();
    let seq_report = seq.run_with(&ExecutionEngine::sequential()).unwrap();
    let mut par = build();
    let par_report = par.run_with(&ExecutionEngine::new(2)).unwrap();
    assert_eq!(seq_report, par_report);
    // The schedule itself followed the window's deterministic draws.
    for r in &seq_report.rounds {
        assert_eq!(r.protected_layers, window.layers_for_round(r.round));
    }
}
