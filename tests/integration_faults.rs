//! Fault & straggler injection, end to end.
//!
//! The guarantees under test:
//!
//! * **Determinism** — under a fixed fault seed, a faulted federation
//!   produces bit-identical reports and final weights for every
//!   `(shards, workers, transport)` combination: every fault decision is
//!   a pure function of `(seed, client, round/message)`, never of
//!   scheduling.
//! * **Liveness** — a kilo-client round with 10% dropout (plus message
//!   loss and a straggler deadline) completes without hanging, commits a
//!   full cohort from the over-provisioned selection, and its ledger
//!   accounts every selected client, including the stragglers and
//!   failures.
//! * **Isolation** — a panicking client (`ClientFailure`) is billed a
//!   zero-cost ledger entry in exactly its own slot; every other client's
//!   bill is unchanged, whatever the worker count.
//! * **Teardown** — `Federation::shutdown` over TCP joins every
//!   per-client service thread without hanging, even when a client
//!   session already ended, and a session whose goodbye never arrives is
//!   released by the endpoint drop.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gradsec::core::trainer::SecureTrainer;
use gradsec::core::ProtectionPolicy;
use gradsec::data::SyntheticMicro;
use gradsec::fl::config::{TrainingPlan, TransportKind};
use gradsec::fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec::fl::trainer::{CycleStats, LocalTrainer};
use gradsec::fl::{ExecutionEngine, FaultPlan, LatencyModel};
use gradsec::nn::model::ModelWeights;
use gradsec::nn::zoo;
use gradsec::nn::Sequential;

const CLIENTS: usize = 10;
const DIM: usize = 12;

fn plan() -> TrainingPlan {
    TrainingPlan {
        rounds: 3,
        clients_per_round: 4,
        batches_per_cycle: 2,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 31,
    }
}

/// The probe that calibrates the straggler deadline: one clean round
/// tells us what a SecureTrainer cycle costs on the simulated clock, so
/// the faulted runs can set a deadline the injected latency tail
/// overruns for some — but not all — clients.
fn cycle_cost_s() -> f64 {
    let mut fed = builder(FaultPlan::seeded(0)).build().unwrap();
    let report = fed.run_round().unwrap();
    let cost = report.ledger.critical_path_s();
    fed.shutdown().unwrap();
    cost
}

fn faults(deadline_s: f64) -> FaultPlan {
    FaultPlan::seeded(0xFA417)
        .dropout(0.15)
        .drop_messages(0.08)
        .garble_replies(0.05)
        .latency(LatencyModel::Exponential { mean_s: 1.0 })
        .deadline_s(deadline_s)
        .spare(3)
}

fn builder(faults: FaultPlan) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(16 * CLIENTS, 2, DIM, 5));
    let policy = ProtectionPolicy::static_layers(&[1]).unwrap();
    Federation::builder(plan())
        .model(|| zoo::tiny_mlp(DIM, 6, 2, 21).unwrap())
        .clients(CLIENTS, data)
        .trainer(|_| Box::new(SecureTrainer::new()))
        .scheduler(policy)
        .faults(faults)
}

#[test]
fn faulted_reports_are_invariant_across_shards_workers_and_transports() {
    let deadline = cycle_cost_s() + 1.0;
    let reference: (FederationReport, ModelWeights) = {
        let mut fed = builder(faults(deadline)).build().unwrap();
        let report = fed.run_with(&ExecutionEngine::sequential()).unwrap();
        let weights = fed.server().global().clone();
        fed.shutdown().unwrap();
        (report, weights)
    };
    // The fixture must actually exercise the fault machinery: across the
    // run, every outcome class shows up at least once.
    let all_rounds = &reference.0.rounds;
    assert!(
        all_rounds.iter().any(|r| !r.stragglers.is_empty()),
        "fixture produced no stragglers — retune the fault seed"
    );
    assert!(
        all_rounds.iter().any(|r| !r.failures.is_empty()),
        "fixture produced no failures — retune the fault seed"
    );
    assert!(
        all_rounds.iter().any(|r| !r.participants.is_empty()),
        "no round committed anything"
    );
    for transport in [TransportKind::InProcess, TransportKind::Tcp] {
        for shards in [1usize, 2, 4] {
            for workers in [1usize, 2, 4] {
                let mut fed = builder(faults(deadline))
                    .transport(transport)
                    .shards(shards)
                    .engine(ExecutionEngine::new(workers))
                    .build_sharded()
                    .unwrap();
                let report = fed.run().unwrap();
                assert_eq!(
                    report, reference.0,
                    "{transport:?} x {shards} shards x {workers} workers: report diverged"
                );
                assert_eq!(
                    fed.server().global(),
                    &reference.1,
                    "{transport:?} x {shards} shards x {workers} workers: weights diverged"
                );
                fed.shutdown().unwrap();
            }
        }
    }
}

#[test]
fn kilo_client_round_with_ten_percent_dropout_completes_and_accounts_everyone() {
    const FLEET: usize = 1000;
    let data = Arc::new(SyntheticMicro::new(2 * FLEET, 2, 8, 5));
    let mut fed = Federation::builder(TrainingPlan {
        rounds: 1,
        clients_per_round: 64,
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::tiny_mlp(8, 4, 2, 13).unwrap())
    .clients(FLEET, data)
    .faults(
        FaultPlan::seeded(99)
            .dropout(0.10)
            .drop_messages(0.05)
            .latency(LatencyModel::Exponential { mean_s: 0.5 })
            .deadline_s(1.5)
            .spare(16),
    )
    .shards(4)
    .engine(ExecutionEngine::new(4))
    .build_sharded()
    .unwrap();
    let report = fed.run().unwrap();
    fed.shutdown().unwrap();
    let round = &report.rounds[0];
    // Over-provisioning filled the cohort despite the faults.
    assert_eq!(round.participants.len(), 64, "cohort not filled");
    // The selection slack really was needed: something straggled or
    // failed under 10% dropout + message loss + a deadline.
    let shed = round.stragglers.len() + round.failures.len();
    assert!(shed > 0, "no faults landed — retune the seed");
    // The ledger accounts every selected client exactly once: committed,
    // surplus, straggler and failed alike.
    let selected = round.participants.len()
        + round.surplus.len()
        + round.stragglers.len()
        + round.failures.len();
    assert_eq!(round.ledger.len(), selected);
    for group in [&round.stragglers, &round.failures] {
        for &ci in group {
            assert!(
                round.ledger.client(ci as u64).is_some(),
                "client {ci} shed but not accounted"
            );
        }
    }
    // Failures are zero-billed; participants keep their (plain-trainer,
    // zero-cost) entries too — no slot is missing.
    for &ci in &round.failures {
        let entry = round.ledger.client(ci as u64).unwrap();
        assert_eq!(entry.crossings, 0);
        assert_eq!(entry.time.total_s(), 0.0);
    }
}

/// A trainer that panics on every cycle.
struct PanickingTrainer;

impl LocalTrainer for PanickingTrainer {
    fn train_cycle(
        &mut self,
        _model: &mut Sequential,
        _dataset: &dyn gradsec::data::Dataset,
        _batches: &[Vec<usize>],
        _learning_rate: f32,
        _protected_layers: &[usize],
    ) -> gradsec::fl::Result<CycleStats> {
        panic!("injected trainer bug");
    }
}

#[test]
fn a_client_failure_bills_exactly_its_own_ledger_slot() {
    let build = |panicking: bool| {
        let data = Arc::new(SyntheticMicro::new(16 * 4, 2, DIM, 5));
        Federation::builder(TrainingPlan {
            rounds: 1,
            clients_per_round: 3,
            batches_per_cycle: 2,
            batch_size: 4,
            learning_rate: 0.05,
            seed: 3,
        })
        .model(|| zoo::tiny_mlp(DIM, 6, 2, 21).unwrap())
        .clients(4, data)
        .trainer(move |id| {
            if panicking && id == 2 {
                Box::new(PanickingTrainer) as Box<dyn LocalTrainer>
            } else {
                Box::new(SecureTrainer::new())
            }
        })
        .build()
        .unwrap()
    };
    // Reference bills from a clean fleet, same picks.
    let mut clean = build(false);
    let download = clean.server().download(vec![1]);
    let (_, clean_ledger) = ExecutionEngine::sequential()
        .execute_cycles(clean.clients_mut(), &[0, 2, 3], &download)
        .unwrap();
    assert!(clean_ledger.client(2).unwrap().crossings > 0);
    for workers in [1usize, 2, 4] {
        let mut fed = build(true);
        let download = fed.server().download(vec![1]);
        let (outcomes, ledger) = ExecutionEngine::new(workers)
            .execute_cycles(fed.clients_mut(), &[0, 2, 3], &download)
            .unwrap();
        assert!(outcomes[0].is_completed(), "{workers} workers");
        assert!(outcomes[1].is_failed(), "{workers} workers");
        assert!(outcomes[2].is_completed(), "{workers} workers");
        // The panicking client is billed zero in its own slot...
        let failed = ledger.client(2).expect("failed client accounted");
        assert_eq!(failed.crossings, 0, "{workers} workers");
        assert_eq!(failed.time.total_s(), 0.0, "{workers} workers");
        assert_eq!(failed.tee_peak_bytes, 0, "{workers} workers");
        // ...and nothing leaked into anyone else's: the healthy clients'
        // bills are bit-identical to the clean fleet's.
        for id in [0u64, 3] {
            assert_eq!(
                ledger.client(id),
                clean_ledger.client(id),
                "{workers} workers: client {id}'s bill changed"
            );
        }
        assert_eq!(ledger.len(), 3, "{workers} workers");
    }
}

/// Runs `f` on a watchdog thread; panics if it has not finished within
/// `secs` — the hang detector the teardown tests lean on.
fn within_secs<F: FnOnce() + Send + 'static>(secs: u64, what: &str, f: F) {
    let handle = std::thread::spawn(f);
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !handle.is_finished() {
        assert!(Instant::now() < deadline, "{what} hung past {secs}s");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.join().expect("watchdogged work panicked");
}

#[test]
fn tcp_shutdown_joins_every_session_even_after_a_client_already_left() {
    within_secs(30, "TCP teardown", || {
        let data = Arc::new(SyntheticMicro::new(16 * 3, 2, DIM, 5));
        let mut fed = Federation::builder(TrainingPlan {
            rounds: 1,
            clients_per_round: 2,
            batches_per_cycle: 1,
            batch_size: 4,
            learning_rate: 0.05,
            seed: 3,
        })
        .model(|| zoo::tiny_mlp(DIM, 6, 2, 21).unwrap())
        .clients(3, data)
        .transport(TransportKind::Tcp)
        .build()
        .unwrap();
        fed.run().unwrap();
        // One client leaves early: its session thread goodbyes out and
        // dies. Teardown must still join all three service threads —
        // including the already-dead one — without hanging or erroring.
        fed.clients_mut()[1].goodbye().unwrap();
        fed.shutdown().unwrap();
    });
}

#[test]
fn tcp_shutdown_is_clean_for_faulted_fleets() {
    within_secs(30, "faulted TCP teardown", || {
        // Goodbye is never faulted, so even a plan that kills every
        // other exchange tears down cleanly over real sockets.
        let data = Arc::new(SyntheticMicro::new(16 * 3, 2, DIM, 5));
        let fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(DIM, 6, 2, 21).unwrap())
            .clients(3, data)
            .transport(TransportKind::Tcp)
            .faults(
                FaultPlan::seeded(1)
                    .dropout(1.0)
                    .drop_messages(1.0)
                    .garble_replies(1.0),
            )
            .build()
            .unwrap();
        fed.shutdown().unwrap();
    });
}

#[test]
fn dropping_a_server_endpoint_releases_a_session_awaiting_goodbye() {
    use gradsec::fl::client::{DeviceProfile, FlClient};
    use gradsec::fl::trainer::PlainSgdTrainer;
    use gradsec::fl::transport::{tcp, ClientSession, RemoteClient};
    within_secs(30, "endpoint-drop release", || {
        let listener = tcp::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let session = std::thread::spawn(move || {
            let ds = Arc::new(SyntheticMicro::new(8, 2, 4, 1));
            let client = FlClient::new(
                5,
                DeviceProfile::trustzone(5),
                ds,
                (0..8).collect(),
                zoo::tiny_mlp(4, 3, 2, 1).unwrap(),
                Box::new(PlainSgdTrainer),
            );
            ClientSession::new(client, tcp::connect(addr).unwrap()).serve()
        });
        let endpoint = listener.accept().unwrap();
        let remote = RemoteClient::connect(Box::new(endpoint)).unwrap();
        assert_eq!(remote.id(), 5);
        // No goodbye: the drop alone must wake the session's blocking
        // recv with a disconnect so the join below cannot hang. This is
        // the property `teardown_fleet` relies on when a goodbye is lost.
        drop(remote);
        let outcome = session.join().expect("session thread must not panic");
        assert!(outcome.is_err(), "session saw the disconnect");
    });
}
