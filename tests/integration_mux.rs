//! Multiplexed-transport determinism: a federation whose client fleet is
//! served by the mux event loops ([`TransportKind::TcpMux`]) must be
//! bit-identical to the thread-per-connection TCP transport and to the
//! in-process transport — same per-round reports and final global
//! weights — flat or sharded, clean or faulted, whatever the event-loop
//! count or read-chunk size. The protocol bytes are identical on every
//! path; the mux only changes who drives the sockets.

use std::sync::Arc;

use gradsec::core::trainer::SecureTrainer;
use gradsec::core::ProtectionPolicy;
use gradsec::data::SyntheticMicro;
use gradsec::fl::config::{MuxOptions, TrainingPlan, TransportKind};
use gradsec::fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec::fl::{ExecutionEngine, FaultPlan, LatencyModel};
use gradsec::nn::model::ModelWeights;
use gradsec::nn::zoo;

const CLIENTS: usize = 8;
const DIM: usize = 12;

fn plan() -> TrainingPlan {
    TrainingPlan {
        rounds: 3,
        clients_per_round: 5,
        batches_per_cycle: 2,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 17,
    }
}

fn builder() -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(16 * CLIENTS, 2, DIM, 5));
    let policy = ProtectionPolicy::static_layers(&[1]).unwrap();
    Federation::builder(plan())
        .model(|| zoo::tiny_mlp(DIM, 6, 2, 21).unwrap())
        .clients(CLIENTS, data)
        .trainer(|_| Box::new(SecureTrainer::new()))
        .scheduler(policy)
}

fn run(mut fed: Federation) -> (FederationReport, ModelWeights) {
    let report = fed.run().unwrap();
    let weights = fed.server().global().clone();
    fed.shutdown().unwrap();
    (report, weights)
}

#[test]
fn mux_round_is_bit_identical_to_threaded_tcp_and_in_process() {
    let mut reference = None;
    for transport in [
        TransportKind::InProcess,
        TransportKind::Tcp,
        TransportKind::TcpMux,
    ] {
        for workers in [1usize, 2, 4] {
            let fed = builder()
                .transport(transport)
                .engine(ExecutionEngine::new(workers))
                .build()
                .unwrap();
            let got = run(fed);
            match &reference {
                None => {
                    assert_eq!(got.0.rounds_completed, 3);
                    reference = Some(got);
                }
                Some(want) => {
                    assert_eq!(
                        &got.0, &want.0,
                        "{transport:?} x {workers} workers: report diverged"
                    );
                    assert_eq!(
                        &got.1, &want.1,
                        "{transport:?} x {workers} workers: weights diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_mux_matches_the_flat_sequential_reference() {
    let (flat_report, flat_weights) = {
        let mut fed = builder().build().unwrap();
        let report = fed.run_with(&ExecutionEngine::sequential()).unwrap();
        let weights = fed.server().global().clone();
        fed.shutdown().unwrap();
        (report, weights)
    };
    for shards in [1usize, 4] {
        for workers in [1usize, 2] {
            let mut fed = builder()
                .transport(TransportKind::TcpMux)
                .shards(shards)
                .engine(ExecutionEngine::new(workers))
                .build_sharded()
                .unwrap();
            let report = fed.run().unwrap();
            assert_eq!(
                report, flat_report,
                "mux x {shards} shards x {workers} workers: report diverged"
            );
            assert_eq!(
                fed.server().global(),
                &flat_weights,
                "mux x {shards} shards x {workers} workers: weights diverged"
            );
            fed.shutdown().unwrap();
        }
    }
}

#[test]
fn faulted_mux_is_bit_identical_under_a_fixed_seed() {
    let faults = || {
        FaultPlan::seeded(0xFA417)
            .dropout(0.15)
            .drop_messages(0.08)
            .garble_replies(0.05)
            .latency(LatencyModel::Exponential { mean_s: 1.0 })
            .spare(3)
    };
    let mut reference = None;
    for transport in [TransportKind::Tcp, TransportKind::TcpMux] {
        let fed = builder()
            .transport(transport)
            .faults(faults())
            .engine(ExecutionEngine::new(2))
            .build()
            .unwrap();
        let got = run(fed);
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                assert_eq!(&got.0, &want.0, "{transport:?}: faulted report diverged");
                assert_eq!(&got.1, &want.1, "{transport:?}: faulted weights diverged");
            }
        }
    }
    // The fixture must actually exercise the fault machinery over the
    // mux path, not just happen to run clean.
    let (report, _) = reference.unwrap();
    assert!(
        report
            .rounds
            .iter()
            .any(|r| !r.failures.is_empty() || !r.stragglers.is_empty()),
        "fixture produced no faults — retune the seed"
    );
}

#[test]
fn tiny_read_chunks_force_straddled_frames_and_still_match() {
    // A 7-byte read chunk is smaller than the 13-byte envelope header:
    // every frame the event loop reassembles straddles multiple reads.
    // A 256-byte write bound forces the backpressure path (replies park
    // in the session queue until the peer drains). Results must not
    // notice.
    let (want_report, want_weights) = {
        let fed = builder().transport(TransportKind::Tcp).build().unwrap();
        run(fed)
    };
    let fed = builder()
        .transport(TransportKind::TcpMux)
        .mux(MuxOptions {
            loops: 2,
            read_chunk: 7,
            write_bound: 256,
        })
        .build()
        .unwrap();
    let (report, weights) = run(fed);
    assert_eq!(report, want_report, "tiny-chunk mux report diverged");
    assert_eq!(weights, want_weights, "tiny-chunk mux weights diverged");
}
