//! Policy-level integration: GradSec vs DarkneTZ semantics and the
//! headline Table 1 arithmetic.

use gradsec::core::memory_model::{layers_tee_mb, tcb_gain_percent};
use gradsec::core::policy::DarknetzPolicy;
use gradsec::core::trainer::estimate_cycle;
use gradsec::core::window::MovingWindow;
use gradsec::core::{GradSecError, ProtectionPolicy};
use gradsec::nn::zoo;
use gradsec::tee::cost::{CostModel, TimeBreakdown};

#[test]
fn darknetz_cannot_express_the_gradsec_config() {
    // The crux of the paper: {L2, L5} is legal for GradSec, illegal for
    // DarkneTZ, whose best answer is the full hull L2..L5.
    assert!(ProtectionPolicy::static_layers(&[1, 4]).is_ok());
    assert!(matches!(
        DarknetzPolicy::new(&[1, 4]),
        Err(GradSecError::NonContiguousSlice { .. })
    ));
    assert_eq!(
        DarknetzPolicy::covering(&[1, 4]).unwrap().layers(),
        vec![1, 2, 3, 4]
    );
}

#[test]
fn table1_gains_hold_end_to_end() {
    let model = zoo::lenet5(1).unwrap();
    let cost = CostModel::raspberry_pi3();
    let hull = DarknetzPolicy::covering(&[1, 4]).unwrap().layers();
    let (gs, _) = estimate_cycle(&model, &[1, 4], 10, 32, &cost).unwrap();
    let (dz, _) = estimate_cycle(&model, &hull, 10, 32, &cost).unwrap();
    // Static: paper −8.3% time, −30% TCB.
    let time_gain = (1.0 - gs.total_s() / dz.total_s()) * 100.0;
    assert!(
        (2.0..20.0).contains(&time_gain),
        "static time gain {time_gain:.1}%"
    );
    let tcb_gain = tcb_gain_percent(&model, &[1, 4], &hull, 32);
    assert!(
        (20.0..40.0).contains(&tcb_gain),
        "static TCB gain {tcb_gain:.1}%"
    );
    // Dynamic: paper −56.7% time, −8% TCB.
    let v_mw = [0.2, 0.1, 0.6, 0.1];
    let window = MovingWindow::new(2, 5, v_mw.to_vec(), 0).unwrap();
    let mut weighted = Vec::new();
    let mut worst: Vec<usize> = vec![];
    let mut worst_mb = 0.0;
    for (pos, &weight) in v_mw.iter().enumerate().take(window.positions()) {
        let layers = window.layers_at(pos);
        let (t, _) = estimate_cycle(&model, &layers, 10, 32, &cost).unwrap();
        weighted.push((t, weight));
        let mb = layers_tee_mb(&model, &layers, 32);
        if mb > worst_mb {
            worst_mb = mb;
            worst = layers;
        }
    }
    let avg = TimeBreakdown::weighted_average(&weighted);
    let dyn_time_gain = (1.0 - avg.total_s() / dz.total_s()) * 100.0;
    assert!(
        (40.0..70.0).contains(&dyn_time_gain),
        "dynamic time gain {dyn_time_gain:.1}%"
    );
    let dyn_tcb_gain = tcb_gain_percent(&model, &worst, &hull, 32);
    assert!(
        (2.0..15.0).contains(&dyn_tcb_gain),
        "dynamic TCB gain {dyn_tcb_gain:.1}%"
    );
}

#[test]
fn darknetz_baseline_runs_through_the_same_trainer() {
    use gradsec::core::trainer::SecureTrainer;
    use gradsec::data::SyntheticCifar100;
    let ds = SyntheticCifar100::with_classes(32, 4, 3);
    let hull = DarknetzPolicy::covering(&[1, 4]).unwrap();
    let mut model = zoo::lenet5_with(4, 7).unwrap();
    let mut trainer = SecureTrainer::new();
    let batches: Vec<Vec<usize>> = vec![(0..8).collect()];
    let report = trainer
        .run_cycle(
            &mut model,
            &ds,
            &batches,
            0.05,
            &hull.to_policy().protected_for_round(0, 5),
        )
        .unwrap();
    // Four contiguous layers: one run, 2 crossings per batch.
    assert_eq!(report.crossings, 2);
    assert_eq!(report.protected, vec![1, 2, 3, 4]);
}

#[test]
fn whole_model_protection_may_exceed_small_enclaves() {
    // The motivation for selective protection (§3.3): small carveouts
    // cannot hold everything.
    let model = zoo::lenet5(1).unwrap();
    let all: Vec<usize> = (0..5).collect();
    let mb = layers_tee_mb(&model, &all, 32);
    assert!(mb > 3.0, "full LeNet-5 at batch 32 is {mb:.2} MB");
    // AlexNet is far beyond any TrustZone carveout.
    let alex = zoo::alexnet(1).unwrap();
    let all8: Vec<usize> = (0..8).collect();
    assert!(layers_tee_mb(&alex, &all8, 32) > 100.0);
}
