//! Shard-count invariance: a federation partitioned across engine shards
//! must produce the *same bits* as the flat federation — same
//! `FederationReport` (participants, losses, protected layers, TEE
//! ledgers) and same final global weights — for every `(shards, workers)`
//! combination, on any transport.

use std::sync::Arc;

use gradsec::core::trainer::SecureTrainer;
use gradsec::core::ProtectionPolicy;
use gradsec::data::SyntheticMicro;
use gradsec::fl::config::{TrainingPlan, TransportKind};
use gradsec::fl::runner::{Federation, FederationReport, ShardedFederation};
use gradsec::fl::{ExecutionEngine, FlError};
use gradsec::nn::model::ModelWeights;
use gradsec::nn::zoo;

const CLIENTS: usize = 8;
const DIM: usize = 12;

fn plan() -> TrainingPlan {
    TrainingPlan {
        rounds: 3,
        clients_per_round: 5,
        batches_per_cycle: 2,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 17,
    }
}

fn builder(shards: usize, workers: usize) -> gradsec::fl::runner::FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(16 * CLIENTS, 2, DIM, 5));
    let policy = ProtectionPolicy::static_layers(&[1]).unwrap();
    Federation::builder(plan())
        .model(|| zoo::tiny_mlp(DIM, 6, 2, 21).unwrap())
        .clients(CLIENTS, data)
        .trainer(|_| Box::new(SecureTrainer::new()))
        .scheduler(policy)
        .shards(shards)
        .engine(ExecutionEngine::new(workers))
}

fn flat_reference() -> (FederationReport, ModelWeights) {
    let mut fed = builder(1, 1).shards(1).build().unwrap();
    let report = fed.run_with(&ExecutionEngine::sequential()).unwrap();
    let weights = fed.server().global().clone();
    fed.shutdown().unwrap();
    (report, weights)
}

#[test]
fn sharded_report_is_invariant_across_shards_and_workers() {
    let (flat_report, flat_weights) = flat_reference();
    assert_eq!(flat_report.rounds_completed, 3);
    for shards in [1usize, 2, 4] {
        for workers in [1usize, 2, 4] {
            let mut fed = builder(shards, workers).build_sharded().unwrap();
            assert_eq!(fed.num_shards(), shards);
            let report = fed.run().unwrap();
            assert_eq!(
                report, flat_report,
                "{shards} shards x {workers} workers: report diverged"
            );
            assert_eq!(
                fed.server().global(),
                &flat_weights,
                "{shards} shards x {workers} workers: weights diverged"
            );
            fed.shutdown().unwrap();
        }
    }
}

#[test]
fn sharded_ledger_accounts_every_participant() {
    let mut fed = builder(4, 2).build_sharded().unwrap();
    let report = fed.run().unwrap();
    for round in &report.rounds {
        assert_eq!(round.ledger.len(), round.participants.len());
        // Entries are id-sorted regardless of which shard finished first.
        let ids: Vec<u64> = round.ledger.entries().iter().map(|e| e.client_id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        // The static {L2} policy charges enclave time on every client.
        assert!(round.ledger.total_time().kernel_s > 0.0);
    }
    fed.shutdown().unwrap();
}

#[test]
fn sharded_runs_are_transport_agnostic() {
    let run = |transport: TransportKind| -> (FederationReport, ModelWeights) {
        let mut fed = builder(2, 2).transport(transport).build_sharded().unwrap();
        let report = fed.run().unwrap();
        let weights = fed.server().global().clone();
        fed.shutdown().unwrap();
        (report, weights)
    };
    let (inproc_report, inproc_weights) = run(TransportKind::InProcess);
    let (tcp_report, tcp_weights) = run(TransportKind::Tcp);
    assert_eq!(inproc_report, tcp_report);
    assert_eq!(inproc_weights, tcp_weights);
}

#[test]
fn duplicate_pick_schedules_error_instead_of_panicking() {
    let mut fed = builder(1, 1).build().unwrap();
    let download = fed.server().download(vec![]);
    for engine in [ExecutionEngine::sequential(), ExecutionEngine::new(4)] {
        let err = engine
            .execute_cycles(fed.clients_mut(), &[0, 3, 0], &download)
            .unwrap_err();
        assert!(matches!(err, FlError::InvalidSelection { .. }), "{err}");
    }
}

#[test]
fn sharded_federation_debug_and_layout_are_coherent() {
    let fed: ShardedFederation = builder(4, 1).build_sharded().unwrap();
    assert_eq!(fed.num_clients(), CLIENTS);
    assert_eq!(fed.layout().num_shards(), 4);
    let covered: usize = (0..fed.num_shards())
        .map(|s| fed.layout().range(s).len())
        .sum();
    assert_eq!(covered, CLIENTS);
    let dbg = format!("{fed:?}");
    assert!(dbg.contains("ShardedFederation"), "{dbg}");
    fed.shutdown().unwrap();
}
