//! TEE-path integration: provisioning protected weights over the trusted
//! I/O path, parking models in secure storage, attestation gating and
//! enclave failure injection.

use gradsec::core::trainer::SecureTrainer;
use gradsec::core::GradSecError;
use gradsec::data::SyntheticCifar100;
use gradsec::fl::config::TrainingPlan;
use gradsec::fl::message::{decode, encode, ModelDownload};
use gradsec::nn::zoo;
use gradsec::tee::storage::SecureStorage;
use gradsec::tee::ta::Uuid;
use gradsec::tee::tiop::{Role, SecureChannel};
use gradsec::tee::TeeError;

#[test]
fn model_download_over_trusted_io_path() {
    // The paper's §7.3 provisioning: the server seals the protected
    // layers' weights; only the enclave end of the channel can open them.
    let model = zoo::lenet5_with(4, 1).unwrap();
    let download = ModelDownload {
        round: 2,
        weights: model.weights(),
        plan: TrainingPlan::default(),
        protected_layers: vec![1, 4],
    };
    let bytes = encode(&download);
    let mut server = SecureChannel::established(b"attested-secret", Role::Server);
    let mut enclave = SecureChannel::established(b"attested-secret", Role::Client);
    let frame = server.seal(&bytes);
    // The normal world sees only ciphertext.
    assert_ne!(frame.ciphertext, bytes);
    let opened = enclave.open(&frame).unwrap();
    let back: ModelDownload = decode(&opened).unwrap();
    assert_eq!(back, download);
    // Replaying the provisioning frame is rejected.
    assert!(enclave.open(&frame).is_err());
}

#[test]
fn model_parks_in_secure_storage_between_cycles() {
    // §5: "the data used for training is kept in the storage of the FL
    // client using TrustZone's secure storage".
    let model = zoo::lenet5_with(4, 2).unwrap();
    let bytes = encode(&model.weights());
    let ta = Uuid::from_name("gradsec-ta");
    let mut store = SecureStorage::new(b"device-unique", 9);
    store.put(ta, "parked-model", &bytes).unwrap();
    let restored: gradsec::nn::model::ModelWeights =
        decode(&store.get(ta, "parked-model").unwrap()).unwrap();
    assert_eq!(restored, model.weights());
    // A malicious REE filesystem flipping one bit is detected.
    assert!(store.tamper_ciphertext(ta, "parked-model", 100));
    assert!(matches!(
        store.get(ta, "parked-model"),
        Err(TeeError::IntegrityViolation { .. })
    ));
}

#[test]
fn enclave_oom_fails_the_cycle_cleanly() {
    // A device whose carveout cannot hold the requested layers must fail
    // provisioning with the enclave OOM — and leave the model usable.
    let ds = SyntheticCifar100::with_classes(32, 4, 3);
    let mut model = zoo::lenet5_with(4, 4).unwrap();
    // L1+L2 at batch 8 need ≈467 KiB; a 256 KiB carveout cannot hold them.
    let mut trainer = SecureTrainer::new().with_budget(256 * 1024);
    let batches: Vec<Vec<usize>> = vec![(0..8).collect()];
    let err = trainer
        .run_cycle(&mut model, &ds, &batches, 0.05, &[0, 1])
        .unwrap_err();
    assert!(matches!(
        err,
        GradSecError::Tee(TeeError::OutOfSecureMemory { .. })
    ));
    // The same cycle fits with only L3 (small) protected.
    trainer
        .run_cycle(&mut model, &ds, &batches, 0.05, &[2])
        .unwrap();
}

#[test]
fn budget_boundary_is_exact() {
    use gradsec::core::memory_model::layers_tee_bytes;
    let ds = SyntheticCifar100::with_classes(32, 4, 3);
    let model = zoo::lenet5_with(4, 5).unwrap();
    let need = layers_tee_bytes(&model, &[2], 8);
    let batches: Vec<Vec<usize>> = vec![(0..8).collect()];
    // Exactly enough succeeds.
    let mut m1 = zoo::lenet5_with(4, 5).unwrap();
    SecureTrainer::new()
        .with_budget(need)
        .run_cycle(&mut m1, &ds, &batches, 0.05, &[2])
        .unwrap();
    // One byte short fails.
    let mut m2 = zoo::lenet5_with(4, 5).unwrap();
    assert!(SecureTrainer::new()
        .with_budget(need - 1)
        .run_cycle(&mut m2, &ds, &batches, 0.05, &[2])
        .is_err());
}
