//! Transport determinism: a federation driven over loopback TCP must be
//! bit-identical to the same-seed federation over the in-process
//! transport — same per-round reports (participants, mean loss, protected
//! layers and the TEE ledger) and same final global weights. The protocol
//! bytes are identical either way; only the pipe differs.

use std::sync::Arc;

use gradsec::core::trainer::SecureTrainer;
use gradsec::core::ProtectionPolicy;
use gradsec::data::SyntheticCifar100;
use gradsec::fl::client::DeviceProfile;
use gradsec::fl::config::{TrainingPlan, TransportKind};
use gradsec::fl::runner::{Federation, FederationReport};
use gradsec::fl::ExecutionEngine;
use gradsec::nn::model::ModelWeights;
use gradsec::nn::zoo;

fn federation(transport: TransportKind, workers: usize) -> Federation {
    let data = Arc::new(SyntheticCifar100::with_classes(64, 2, 11));
    let policy = ProtectionPolicy::static_layers(&[1, 4]).unwrap();
    Federation::builder(TrainingPlan {
        rounds: 2,
        clients_per_round: 3,
        batches_per_cycle: 2,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 23,
    })
    .model(|| zoo::lenet5_with(2, 31).expect("LeNet-5 builds"))
    .clients(4, data)
    .trainer(|_| Box::new(SecureTrainer::new()))
    .scheduler(policy)
    .engine(ExecutionEngine::new(workers))
    .transport(transport)
    .build()
    .unwrap()
}

fn run(transport: TransportKind, workers: usize) -> (FederationReport, ModelWeights) {
    let mut fed = federation(transport, workers);
    let report = fed.run().unwrap();
    let weights = fed.server().global().clone();
    fed.shutdown().unwrap();
    (report, weights)
}

#[test]
fn tcp_loopback_round_is_bit_identical_to_in_process() {
    let (inproc_report, inproc_weights) = run(TransportKind::InProcess, 1);
    assert_eq!(inproc_report.rounds_completed, 2);
    let (tcp_report, tcp_weights) = run(TransportKind::Tcp, 1);
    assert_eq!(
        inproc_report, tcp_report,
        "TCP round reports diverged from in-process"
    );
    assert_eq!(
        inproc_weights, tcp_weights,
        "TCP final weights diverged from in-process"
    );
    // The comparison above covers participants, mean_loss and the full
    // ledger via PartialEq; spot-check the ledger really carried the
    // enclave bill across the sockets.
    for round in &tcp_report.rounds {
        assert_eq!(round.ledger.len(), round.participants.len());
        assert!(round.ledger.total_time().kernel_s > 0.0);
        assert!(round.ledger.total_crossings() > 0);
        assert!(round.ledger.max_tee_peak_bytes() > 0);
    }
}

#[test]
fn tcp_transport_is_deterministic_across_engine_widths() {
    let (seq_report, seq_weights) = run(TransportKind::Tcp, 1);
    for workers in [2usize, 4] {
        let (report, weights) = run(TransportKind::Tcp, workers);
        assert_eq!(
            seq_report, report,
            "{workers}-worker TCP report diverged from sequential TCP"
        );
        assert_eq!(seq_weights, weights, "{workers}-worker weights diverged");
    }
}

#[test]
fn mixed_fleet_screens_identically_over_tcp() {
    let data = Arc::new(SyntheticCifar100::with_classes(64, 2, 5));
    let build = |transport| {
        Federation::builder(TrainingPlan {
            rounds: 2,
            clients_per_round: 2,
            batches_per_cycle: 2,
            batch_size: 8,
            learning_rate: 0.05,
            seed: 3,
        })
        .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).expect("builds"))
        .devices(
            vec![
                DeviceProfile::trustzone(0),
                DeviceProfile::legacy(1),
                DeviceProfile::compromised(2),
                DeviceProfile::trustzone(3),
            ],
            data.clone(),
        )
        .transport(transport)
        .build()
        .unwrap()
    };
    let mut inproc = build(TransportKind::InProcess);
    let inproc_report = inproc.run().unwrap();
    let mut tcp = build(TransportKind::Tcp);
    let tcp_report = tcp.run().unwrap();
    assert_eq!(inproc_report, tcp_report);
    for r in &tcp_report.rounds {
        assert!(r.participants.iter().all(|&i| i == 0 || i == 3));
    }
    tcp.shutdown().unwrap();
}

#[test]
fn per_round_json_export_is_stable_across_transports() {
    let (inproc_report, _) = run(TransportKind::InProcess, 1);
    let (tcp_report, _) = run(TransportKind::Tcp, 2);
    assert_eq!(inproc_report.to_json(), tcp_report.to_json());
    let json = tcp_report.to_json();
    assert!(json.contains(r#""rounds_completed":2"#), "{json}");
    assert!(
        json.contains(r#""ledger":{"entries":[{"client_id":"#),
        "{json}"
    );
}
