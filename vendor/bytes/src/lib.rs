//! Minimal API-compatible subset of the `bytes` crate.
//!
//! Backs the wire codec in `gradsec-fl::message`. Only the little-endian
//! accessors the codec uses are provided; both buffer types are plain
//! `Vec<u8>` wrappers (no refcounted slices — nothing in the workspace
//! shares buffers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// `true` while unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        f32::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        f64::from_le_bytes(b)
    }

    /// Fills `dest` from the cursor.
    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of Bytes");
        self.pos += n;
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// The accumulated bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freezes into a readable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Empties the buffer, keeping its capacity — the reuse hook for
    /// per-session encode scratch buffers.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The accumulated bytes, borrowed (no copy).
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xFEED_FACE);
        w.put_u64_le(0xDEAD_BEEF);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        w.put_slice(b"abc");
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xFEED_FACE);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        let mut buf = [0u8; 3];
        r.copy_to_slice(&mut buf);
        assert_eq!(&buf, b"abc");
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::copy_from_slice(b"xy");
        b.advance(3);
    }
}
