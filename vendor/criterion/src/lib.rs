//! Minimal API-compatible subset of the `criterion` benchmark harness.
//!
//! Implements the call surface the workspace's benches use —
//! `bench_function`, `benchmark_group`/`sample_size`/`finish`, `iter`,
//! `iter_batched`, the `criterion_group!`/`criterion_main!` macros — with
//! a simple median-of-samples wall-clock measurement instead of
//! criterion's full statistical machinery. Results print one line per
//! benchmark and are collected in [`Criterion::results`] so harnesses can
//! export machine-readable summaries (see the `engine_scaling` bench).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted for API
/// compatibility; every batch size measures one routine call per sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Fully qualified benchmark id (`group/name` or bare `name`).
    pub id: String,
    /// Median wall-clock time per iteration.
    pub median: Duration,
    /// Samples taken.
    pub samples: usize,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    sample_size: usize,
}

/// Measurement context handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    times: Vec<Duration>,
    samples: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then `samples` timed calls.
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.times.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        self.times.sort_unstable();
        self.times[self.times.len() / 2]
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (criterion's default is 100;
    /// this harness defaults lower to keep `cargo bench` minutes-scale).
    const DEFAULT_SAMPLES: usize = 10;

    fn run_one(&mut self, id: String, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            times: Vec::with_capacity(samples),
            samples,
        };
        f(&mut b);
        let median = b.median();
        println!("bench {id:<50} median {median:?} ({} samples)", b.samples);
        self.results.push(BenchResult {
            id,
            median,
            samples,
        });
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let samples = if self.sample_size == 0 {
            Self::DEFAULT_SAMPLES
        } else {
            self.sample_size
        };
        self.run_one(id.to_owned(), samples, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: Self::DEFAULT_SAMPLES,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let samples = self.sample_size;
        self.criterion.run_one(full, samples, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..=n).product()
    }

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default();
        c.bench_function("fib_20", |b| b.iter(|| fib(black_box(20))));
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].id, "fib_20");
        assert_eq!(c.results()[0].samples, 10);
    }

    #[test]
    fn groups_prefix_ids_and_respect_sample_size() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_function("one", |b| b.iter(|| fib(black_box(5))));
            g.bench_function("two", |b| {
                b.iter_batched(|| 5u64, |n| fib(black_box(n)), BatchSize::SmallInput)
            });
            g.finish();
        }
        let ids: Vec<&str> = c.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["grp/one", "grp/two"]);
        assert!(c.results().iter().all(|r| r.samples == 3));
    }
}
