//! Minimal API-compatible subset of `crossbeam`'s scoped threads.
//!
//! Since Rust 1.63, `std::thread::scope` provides the same guarantees
//! crossbeam's scope pioneered; this vendored crate adapts the std API to
//! crossbeam's call shape (`scope(|s| …)` returning `Result`, spawn
//! closures taking a `&Scope` argument) so the workspace's hot kernels
//! keep the familiar idiom without the external dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    /// The result of joining a scoped thread (`Err` carries a panic
    /// payload).
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle through which workers are spawned.
    #[derive(Clone, Copy, Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the worker and returns its result (or its panic
        /// payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope. The closure receives the
        /// scope back (crossbeam's signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&me)),
            }
        }
    }

    /// Creates a scope: every thread spawned inside is joined before the
    /// call returns. Unjoined worker panics propagate (std semantics)
    /// rather than being collected into the `Err` arm, which is the only
    /// behavioural difference from crossbeam — callers in this workspace
    /// treat any worker panic as fatal either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn disjoint_mut_borrows_across_workers() {
        let mut buf = vec![0u32; 8];
        thread::scope(|s| {
            for (i, chunk) in buf.chunks_mut(4).enumerate() {
                s.spawn(move |_| chunk.fill(i as u32 + 1));
            }
        })
        .unwrap();
        assert_eq!(&buf[..4], &[1, 1, 1, 1]);
        assert_eq!(&buf[4..], &[2, 2, 2, 2]);
    }
}
