//! Minimal API-compatible subset of the `proptest` framework.
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), [`Strategy`] for numeric ranges / tuples / simple regex string
//! literals, [`any`] over primitives and byte arrays, and the
//! `collection::{vec, btree_set}` combinators. Unlike upstream proptest
//! there is **no shrinking**: a failing case reports its inputs via the
//! standard assertion message and the run is deterministic per test name,
//! so failures reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String strategy from a regex literal. Only the subset the workspace
/// uses is understood: a single character class with an explicit repeat
/// count, e.g. `"[a-z]{1,12}"`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let (lo_ch, hi_ch, min, max) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy {self:?} (vendored proptest understands only \"[a-b]{{m,n}}\")"));
        let len = rng.random_range(min..max + 1);
        (0..len)
            .map(|_| rng.random_range(lo_ch as u32..hi_ch as u32 + 1))
            .map(|c| char::from_u32(c).expect("class chars are ASCII"))
            .collect()
    }
}

/// Parses `[x-y]{m,n}` into `(x, y, m, n)`.
fn parse_class_repeat(pat: &str) -> Option<(char, char, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let lo = chars.next()?;
    if chars.next()? != '-' {
        return None;
    }
    let hi = chars.next()?;
    if chars.next().is_some() || hi < lo {
        return None;
    }
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = body.split_once(',')?;
    Some((lo, hi, m.trim().parse().ok()?, n.trim().parse().ok()?))
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}
arb_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mut out = [0u8; N];
        rng.fill(&mut out[..]);
        out
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A set of at most `size` elements drawn from `element` (duplicates
    /// collapse, so the set may be smaller — matching set semantics).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Seeds the per-test RNG deterministically from the test's name.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Asserts a property-level condition (plain `assert!` without
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-level equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts property-level inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` inside the case loop generated by [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `body` over random strategy draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, 10usize..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_assume((a, b) in pair(), c in 0usize..5) {
            prop_assume!(c > 0);
            prop_assert!(a < b);
            prop_assert_ne!(c, 0);
        }

        #[test]
        fn collections_and_regex(
            v in crate::collection::vec(any::<u8>(), 0..16),
            s in crate::collection::btree_set(0usize..8, 0..6),
            name in "[a-z]{1,12}",
        ) {
            prop_assert!(v.len() < 16);
            prop_assert!(s.len() < 6);
            prop_assert!(!name.is_empty() && name.len() <= 12);
            prop_assert!(name.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn arrays_arbitrary(key in any::<[u8; 32]>(), flag in any::<bool>()) {
            prop_assert_eq!(key.len(), 32);
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        use rand::Rng;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
