//! Minimal, deterministic, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the surface the workspace uses: [`rngs::StdRng`]
//! (a xoshiro256** generator seeded through SplitMix64), the
//! [`SeedableRng`] / [`Rng`] / [`RngExt`] traits and
//! [`seq::SliceRandom::shuffle`]. The stream is **not** the same as the
//! upstream `StdRng` stream — everything in this workspace only requires
//! self-consistent determinism from a `u64` seed, never a particular
//! stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// A source of randomness.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value from its standard distribution (uniform unit
    /// interval for floats, uniform over all values for integers).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

/// Extension methods over [`Rng`] (ranged and Bernoulli draws).
pub trait RngExt: Rng {
    /// Uniform draw from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng> RngExt for R {}

/// Types with a standard (full-range / unit-interval) distribution.
pub trait StandardUniform: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one sample from `range`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty random_range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                let draw = rng.next_u64() % span;
                ((range.start as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}
uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty random_range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                range.start + (range.end - range.start) * unit
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (not the upstream ChaCha12 stream; see crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
