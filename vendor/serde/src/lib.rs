//! Offline stand-in for `serde`'s derive macros.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` as a marker on
//! its message and config types, but performs all actual serialisation
//! through the hand-rolled binary codec in `gradsec-fl::message` (no code
//! path calls a serde serializer). Since the build container cannot reach
//! crates.io, this vendored proc-macro crate accepts the derives and
//! expands to nothing, keeping the annotations — and the option to swap in
//! real serde later — without the dependency.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
